package harness

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"time"

	"anonradio/internal/config"
	"anonradio/internal/server"
	"anonradio/internal/service"
	"anonradio/internal/wire"
)

// E16WireEncoding measures what the binary wire encoding buys over JSON on
// the same routes: the election workload of E13 is served over loopback HTTP
// twice — once as JSON bodies, once as binary frames
// (application/x-anonradio-bin) — against one shared registry, with every
// outcome checked against the in-process reference for its key. The table
// reports per-election cost and the slowdown versus in-process ElectBatch;
// the notes carry the at-rest half of the story (snapshot bytes and journal
// record bytes under each encoding). The benchmarks behind the CI numbers
// are BenchmarkWireServedElect / BenchmarkJSONServedElect (internal/server)
// and the Binary*/JSON* snapshot and WAL pairs (internal/service).
func E16WireEncoding(opts Options) (*Table, error) {
	nCfgs, size, elections := 8, 16, 2000
	batchSizes := []int{1, 64}
	if opts.Quick {
		nCfgs, size, elections = 4, 10, 200
		batchSizes = []int{1, 8}
	}

	reg := service.New(service.Options{})
	defer reg.Close()
	keys := make([]string, nCfgs)
	cfgs := make([]*config.Config, nCfgs)
	for i := range keys {
		keys[i] = fmt.Sprintf("cfg-%d", i)
		if i%2 == 0 {
			cfgs[i] = config.StaggeredClique(size + i)
		} else {
			cfgs[i] = config.StaggeredPath(size+i, 1)
		}
		if err := reg.Register(keys[i], cfgs[i]); err != nil {
			return nil, fmt.Errorf("E16 register %s: %w", keys[i], err)
		}
	}

	// In-process reference outcomes (also the warm-up) and baseline timing.
	outs, err := reg.ElectBatch(keys, nil)
	if err != nil {
		return nil, fmt.Errorf("E16 warm-up: %w", err)
	}
	leaders := make([]int, nCfgs)
	rounds := make([]int, nCfgs)
	for i, o := range outs {
		leaders[i], rounds[i] = o.Leader, o.Rounds
	}
	workload := make([]string, 0, elections)
	for len(workload) < elections {
		workload = append(workload, keys[len(workload)%nCfgs])
	}
	start := time.Now()
	for done := 0; done < elections; done += nCfgs {
		if outs, err = reg.ElectBatch(keys, outs); err != nil {
			return nil, fmt.Errorf("E16 in-process serve: %w", err)
		}
	}
	inProcess := time.Since(start)
	inProcessPer := inProcess / time.Duration(elections)

	srv := server.New(reg, server.Options{})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("E16 listen: %w", err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(l) }()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
		<-serveDone
	}()
	base := "http://" + l.Addr().String()
	client := &http.Client{}

	check := func(key string, leader, round int) bool {
		for i, k := range keys {
			if k == key {
				return leader == leaders[i] && round == rounds[i]
			}
		}
		return false
	}

	table := NewTable("E16: wire encoding cost (binary frames vs JSON on the same routes)",
		"encoding", "batch", "elections", "total time", "per-elect", "vs in-process", "agree")
	table.AddRow("in-process", fmt.Sprintf("%d", nCfgs), fmt.Sprintf("%d", elections),
		inProcess.Round(time.Millisecond).String(), inProcessPer.Round(100*time.Nanosecond).String(), "1.00x", "true")

	// One elect (or batch chunk) over the chosen encoding; returns whether
	// every outcome agreed with the in-process reference.
	serveJSON := func(chunk []string) (bool, error) {
		if len(chunk) == 1 {
			body, _ := json.Marshal(server.ElectRequest{Key: chunk[0]})
			resp, err := client.Post(base+"/v1/elect", "application/json", bytes.NewReader(body))
			if err != nil {
				return false, err
			}
			var out server.Outcome
			err = json.NewDecoder(resp.Body).Decode(&out)
			resp.Body.Close()
			if err != nil {
				return false, err
			}
			return out.Elected && check(out.Key, out.Leader, out.Rounds), nil
		}
		body, _ := json.Marshal(server.BatchRequest{Keys: chunk})
		resp, err := client.Post(base+"/v1/elect/batch", "application/json", bytes.NewReader(body))
		if err != nil {
			return false, err
		}
		var out server.BatchResponse
		err = json.NewDecoder(resp.Body).Decode(&out)
		resp.Body.Close()
		if err != nil {
			return false, err
		}
		agree := out.Failures == 0 && len(out.Outcomes) == len(chunk)
		for _, o := range out.Outcomes {
			if !o.Elected || !check(o.Key, o.Leader, o.Rounds) {
				agree = false
			}
		}
		return agree, nil
	}
	var frame []byte // reused request frame, the way a pooled client would
	serveBinary := func(chunk []string) (bool, error) {
		url, want := base+"/v1/elect", wire.FrameOutcome
		if len(chunk) == 1 {
			frame = wire.AppendElectRequestFrame(frame[:0], &wire.ElectRequest{Key: chunk[0]})
		} else {
			frame = wire.AppendBatchRequestFrame(frame[:0], &wire.BatchRequest{Keys: chunk})
			url, want = base+"/v1/elect/batch", wire.FrameBatchResponse
		}
		resp, err := client.Post(url, server.ContentTypeBinary, bytes.NewReader(frame))
		if err != nil {
			return false, err
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return false, err
		}
		typ, payload, _, err := wire.DecodeFrame(body)
		if err != nil || typ != want {
			return false, fmt.Errorf("response frame %v (%v), want %v", typ, err, want)
		}
		if len(chunk) == 1 {
			var out wire.Outcome
			if err := out.DecodeFrom(payload); err != nil {
				return false, err
			}
			return out.Elected && check(out.Key, out.Leader, out.Rounds), nil
		}
		var out wire.BatchResponse
		if err := out.DecodeFrom(payload); err != nil {
			return false, err
		}
		agree := out.Failures == 0 && len(out.Outcomes) == len(chunk)
		for _, o := range out.Outcomes {
			if !o.Elected || !check(o.Key, o.Leader, o.Rounds) {
				agree = false
			}
		}
		return agree, nil
	}

	for _, enc := range []struct {
		name  string
		serve func([]string) (bool, error)
	}{{"JSON", serveJSON}, {"binary", serveBinary}} {
		for _, batch := range batchSizes {
			agree := true
			served := 0
			start := time.Now()
			for done := 0; done < elections; done += batch {
				chunk := batch
				if rest := elections - done; rest < chunk {
					chunk = rest
				}
				ok, err := enc.serve(workload[done : done+chunk])
				if err != nil {
					return nil, fmt.Errorf("E16 %s batch=%d: %w", enc.name, batch, err)
				}
				agree = agree && ok
				served += chunk
			}
			elapsed := time.Since(start)
			per := elapsed / time.Duration(served)
			table.AddRow(
				enc.name, fmt.Sprintf("%d", batch), fmt.Sprintf("%d", served),
				elapsed.Round(time.Millisecond).String(),
				per.Round(100*time.Nanosecond).String(),
				fmt.Sprintf("%.2fx", float64(per)/float64(inProcessPer)),
				fmt.Sprintf("%v", agree),
			)
			if !agree {
				return nil, fmt.Errorf("E16: %s outcomes diverged from in-process at batch=%d", enc.name, batch)
			}
		}
	}

	// The at-rest half: snapshot the same fleet under both encodings and
	// compare artifact bytes, plus one journal record of each encoding.
	snapBytes := func(enc service.Encoding) (int64, error) {
		dir, err := os.MkdirTemp("", "anonradio-e16-")
		if err != nil {
			return 0, err
		}
		defer os.RemoveAll(dir)
		src := service.New(service.Options{Shards: 2, SnapshotEncoding: enc})
		defer src.Close()
		for i, key := range keys {
			if err := src.Register(key, cfgs[i]); err != nil {
				return 0, err
			}
		}
		m, err := src.Snapshot(dir)
		if err != nil {
			return 0, err
		}
		var total int64
		for _, e := range m.Entries {
			fi, err := os.Stat(filepath.Join(dir, e.ArtifactFile))
			if err != nil {
				return 0, err
			}
			total += fi.Size()
		}
		return total, nil
	}
	jsonSnap, err := snapBytes(service.EncodingJSON)
	if err != nil {
		return nil, fmt.Errorf("E16 JSON snapshot: %w", err)
	}
	binSnap, err := snapBytes(service.EncodingBinary)
	if err != nil {
		return nil, fmt.Errorf("E16 binary snapshot: %w", err)
	}

	table.AddNote("one loopback HTTP connection (keep-alive); both encodings hit the same routes and the same registry")
	table.AddNote("agreement: every served outcome matched the in-process leader and round count, across both encodings")
	table.AddNote("snapshot artifacts for the same %d-config fleet: binary %d bytes vs JSON %d bytes (%.1fx smaller)",
		nCfgs, binSnap, jsonSnap, float64(jsonSnap)/float64(binSnap))
	table.AddNote("journal records use the same frames; see BenchmarkBinaryWALAdmit / BenchmarkJSONWALAdmit for the append cost")
	return table, nil
}
