package harness

import (
	"fmt"
	"time"

	"anonradio/internal/config"
	"anonradio/internal/core"
	"anonradio/internal/stats"
	"anonradio/internal/symmetry"
)

// This file implements E11 (how far the simple automorphism certificate gets
// compared to the full Classifier) and A1 (ablation of the Refine
// implementation: the paper's representative scan vs hash-based grouping).

func e11Params(opts Options) (sizes []int, spans []int, trials int) {
	if opts.Quick {
		return []int{6, 10}, []int{0, 1, 2}, opts.trials(0, 20)
	}
	return []int{8, 12, 16}, []int{0, 1, 2, 4}, opts.trials(150, 20)
}

// E11Symmetry compares the exact tag-preserving-automorphism certificate
// ("every orbit has >= 2 nodes, hence infeasible") against the Classifier on
// random configurations: how many infeasible configurations the certificate
// catches, and that it never contradicts the Classifier.
func E11Symmetry(opts Options) (*Table, error) {
	sizes, spans, trials := e11Params(opts)
	rng := opts.rng()
	table := NewTable("E11: automorphism certificate vs Classifier",
		"n", "span", "trials", "infeasible", "certified by symmetry", "missed by symmetry", "contradictions")
	for _, n := range sizes {
		for _, span := range spans {
			infeasible, certified, missed, contradictions := 0, 0, 0, 0
			for trial := 0; trial < trials; trial++ {
				cfg := config.Random(n, 4.0/float64(n), config.UniformRandomTags{Span: span}, rng)
				rep, err := core.Classify(cfg)
				if err != nil {
					return nil, fmt.Errorf("E11 n=%d span=%d: %w", n, span, err)
				}
				cert, err := symmetry.CertifiesInfeasible(cfg, 0)
				if err != nil {
					return nil, fmt.Errorf("E11 n=%d span=%d: %w", n, span, err)
				}
				if cert && rep.Feasible() {
					contradictions++
				}
				if !rep.Feasible() {
					infeasible++
					if cert {
						certified++
					} else {
						missed++
					}
				}
			}
			table.AddRow(
				fmt.Sprintf("%d", n),
				fmt.Sprintf("%d", span),
				fmt.Sprintf("%d", trials),
				fmt.Sprintf("%d", infeasible),
				fmt.Sprintf("%d", certified),
				fmt.Sprintf("%d", missed),
				fmt.Sprintf("%d", contradictions),
			)
			if contradictions > 0 {
				return nil, fmt.Errorf("E11 n=%d span=%d: symmetry certificate contradicted the classifier", n, span)
			}
		}
	}
	table.AddNote("'missed by symmetry' counts infeasible configurations with a node fixed by every automorphism: the radio model hides enough information that structure alone cannot explain their infeasibility — exactly why the paper needs the Classifier")
	return table, nil
}

func a1Sizes(opts Options) []int {
	if opts.Quick {
		return []int{16, 32}
	}
	return []int{32, 64, 128, 256}
}

// A1RefineAblation measures the wall-clock effect of the one implementation
// choice the complexity analysis of Lemma 3.5 hinges on: how nodes are
// grouped into classes during Refine. The baseline follows the paper
// (compare every node against every class representative, O(n²Δ) per
// iteration); the variant groups by hashed (class, label) keys (O(nΔ)
// expected, but with per-node allocations for the keys). Both produce
// identical reports (enforced by tests); the table reports the measured
// ratio on two opposite regimes: the dense staggered clique (few iterations,
// long labels) and the line family G_m (many iterations, many classes, short
// labels).
func A1RefineAblation(opts Options) (*Table, error) {
	table := NewTable("A1: Refine implementation ablation (representative scan vs hashing vs turbo)",
		"workload", "n", "Δ", "scan refine", "hash refine", "turbo", "hash speedup", "turbo speedup")
	turboEngine := core.NewTurbo()
	workloads := []struct {
		name string
		gen  func(n int) *config.Config
	}{
		{"staggered-clique", func(n int) *config.Config { return config.StaggeredClique(n) }},
		{"line-family-G", func(n int) *config.Config {
			m := n / 4
			if m < 2 {
				m = 2
			}
			return config.LineFamilyG(m)
		}},
	}
	for _, w := range workloads {
		for _, n := range a1Sizes(opts) {
			cfg := w.gen(n)
			repeat := 3
			scan := time.Duration(0)
			hash := time.Duration(0)
			turbo := time.Duration(0)
			for i := 0; i < repeat; i++ {
				start := time.Now()
				if _, err := core.Classify(cfg); err != nil {
					return nil, fmt.Errorf("A1 %s n=%d: %w", w.name, n, err)
				}
				scan += time.Since(start)
				start = time.Now()
				if _, err := core.ClassifyFast(cfg); err != nil {
					return nil, fmt.Errorf("A1 %s n=%d: %w", w.name, n, err)
				}
				hash += time.Since(start)
				start = time.Now()
				if _, err := turboEngine.Classify(cfg, core.ClassifyOptions{}); err != nil {
					return nil, fmt.Errorf("A1 %s n=%d: %w", w.name, n, err)
				}
				turbo += time.Since(start)
			}
			table.AddRow(
				w.name,
				fmt.Sprintf("%d", cfg.N()),
				fmt.Sprintf("%d", cfg.MaxDegree()),
				(scan / time.Duration(repeat)).Round(time.Microsecond).String(),
				(hash / time.Duration(repeat)).Round(time.Microsecond).String(),
				(turbo / time.Duration(repeat)).Round(time.Microsecond).String(),
				fmt.Sprintf("%.2f", stats.Ratio(float64(scan), float64(hash))),
				fmt.Sprintf("%.2f", stats.Ratio(float64(scan), float64(turbo))),
			)
		}
	}
	table.AddNote("all three implementations produce identical verdicts and partitions (see internal/core/fast_test.go and turbo_test.go); speedups are relative to the paper-faithful representative scan, and turbo runs in lean mode (no snapshot materialization), which is how the batch survey layer drives it")
	return table, nil
}
