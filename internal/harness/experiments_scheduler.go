package harness

import (
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"time"

	"anonradio/internal/config"
	"anonradio/internal/election"
	"anonradio/internal/service"
)

// E17HotShardRelief measures the two halves of the hot-shard work in PR 8
// against the paths they replace.
//
// Serving half: a zipf-skewed key workload (most elections hit one hot
// key, so most land on one shard) is driven by closed-loop clients against
// the same registry with work stealing on and off. Every outcome is
// checked against the direct per-key reference — stealing moves where an
// election runs, never what it computes — and the table reports
// throughput, tail latency and the stolen share. The headline ≥2x only
// materialises with real cores to steal on: on a single-core host the
// stolen share shows the mechanism firing, while throughput stays ~1x
// because thief and victim share the one CPU (CI's multi-core runners and
// BenchmarkStealHotKey carry the speedup numbers).
//
// Churn half: re-admitting a configuration of a shape the registry has
// served before now rebuilds into the evicted algorithm's memory
// (election.BuildArena.RebuildInto) instead of allocating lists, report,
// phase table and decision afresh. The table compares fresh arena builds
// against steady-state rebuilds — time, allocations and bytes per build —
// plus the end-to-end evict+re-register cost through the admission
// pipeline, which now takes the rebuild path automatically.
func E17HotShardRelief(opts Options) (*Table, error) {
	nKeys, workers, elections := 8, 16, 8000
	churnBuilds := 300
	if opts.Quick {
		nKeys, workers, elections = 4, 8, 800
		churnBuilds = 40
	}

	// A thief needs a scheduler slot of its own: under GOMAXPROCS=1 the
	// home worker drains its whole queue per time slice and siblings never
	// observe a backlog. Raise the parallelism for the experiment window
	// (works even on one physical core — slices interleave) and restore it.
	if runtime.GOMAXPROCS(0) < 4 {
		defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	}

	keys := make([]string, nKeys)
	cfgs := make([]*config.Config, nKeys)
	for i := range keys {
		keys[i] = fmt.Sprintf("cfg-%d", i)
		if i%2 == 0 {
			cfgs[i] = config.StaggeredClique(10 + i)
		} else {
			cfgs[i] = config.StaggeredPath(10+i, 1)
		}
	}

	type row struct {
		mode      string
		elections int
		elapsed   time.Duration
		p50, p999 time.Duration
		stolen    int64
		agree     bool
	}

	serve := func(stealing bool) (row, error) {
		reg := service.New(service.Options{Shards: 4, WorkStealing: service.Bool(stealing)})
		defer reg.Close()
		for i, key := range keys {
			if err := reg.Register(key, cfgs[i]); err != nil {
				return row{}, fmt.Errorf("E17 register %s: %w", key, err)
			}
		}
		// Reference outcomes (and warm-up) straight from the registry.
		outs, err := reg.ElectBatch(keys, nil)
		if err != nil {
			return row{}, fmt.Errorf("E17 warm-up: %w", err)
		}
		leaders := make(map[string][2]int, nKeys)
		for i, o := range outs {
			leaders[keys[i]] = [2]int{o.Leader, o.Rounds}
		}

		perWorker := elections / workers
		lats := make([][]time.Duration, workers)
		errs := make([]error, workers)
		agrees := make([]bool, workers)
		var wg sync.WaitGroup
		start := time.Now()
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				// Deterministic zipf skew per worker: s=1.3 sends ~60% of
				// the draws to key 0 — the hot key, the hot shard.
				zipf := rand.NewZipf(rand.New(rand.NewSource(int64(w)+1)), 1.3, 1, uint64(nKeys-1))
				lat := make([]time.Duration, 0, perWorker)
				agree := true
				for i := 0; i < perWorker; i++ {
					key := keys[zipf.Uint64()]
					t0 := time.Now()
					out, err := reg.Elect(key)
					lat = append(lat, time.Since(t0))
					if err != nil {
						errs[w] = fmt.Errorf("elect %s: %w", key, err)
						return
					}
					if exp := leaders[key]; out.Leader != exp[0] || out.Rounds != exp[1] {
						agree = false
					}
				}
				lats[w], agrees[w] = lat, agree
			}(w)
		}
		wg.Wait()
		elapsed := time.Since(start)
		var all []time.Duration
		agree := true
		for w := range lats {
			if errs[w] != nil {
				return row{}, errs[w]
			}
			all = append(all, lats[w]...)
			agree = agree && agrees[w]
		}
		sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
		pct := func(p float64) time.Duration { return all[min(len(all)-1, int(float64(len(all))*p))] }
		stats, err := reg.Stats()
		if err != nil {
			return row{}, err
		}
		total := service.Totals(stats)
		mode := "stealing off"
		if stealing {
			mode = "stealing on"
		}
		return row{mode, len(all), elapsed, pct(0.50), pct(0.999), total.Stolen, agree}, nil
	}

	table := NewTable("E17: hot-shard relief (work stealing under zipf skew; rebuild-in-place churn)",
		"mode", "ops", "total time", "throughput", "p50", "p99.9", "stolen", "agree")
	var onRow, offRow row
	var err error
	if offRow, err = serve(false); err != nil {
		return nil, err
	}
	if onRow, err = serve(true); err != nil {
		return nil, err
	}
	for _, r := range []row{offRow, onRow} {
		if !r.agree {
			return nil, fmt.Errorf("E17 %s: served outcomes diverged from the direct reference", r.mode)
		}
		table.AddRow(r.mode, fmt.Sprintf("%d", r.elections),
			r.elapsed.Round(time.Millisecond).String(),
			fmt.Sprintf("%.0f elect/s", float64(r.elections)/r.elapsed.Seconds()),
			r.p50.Round(time.Microsecond).String(),
			r.p999.Round(time.Microsecond).String(),
			fmt.Sprintf("%d (%.1f%%)", r.stolen, 100*float64(r.stolen)/float64(r.elections)),
			fmt.Sprintf("%v", r.agree))
	}

	// Churn half: fresh arena builds vs steady-state rebuild-in-place,
	// then the same churn through the admission pipeline.
	churnCfg := config.StaggeredClique(32)
	measureBuilds := func(mode string, build func() error) (row2 []string, err error) {
		// One warm build outside the window so pools reach steady state.
		if err := build(); err != nil {
			return nil, fmt.Errorf("E17 %s warm-up: %w", mode, err)
		}
		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)
		start := time.Now()
		for i := 0; i < churnBuilds; i++ {
			if err := build(); err != nil {
				return nil, fmt.Errorf("E17 %s: %w", mode, err)
			}
		}
		elapsed := time.Since(start)
		runtime.ReadMemStats(&after)
		per := elapsed / time.Duration(churnBuilds)
		return []string{
			mode, fmt.Sprintf("%d", churnBuilds),
			elapsed.Round(time.Millisecond).String(),
			fmt.Sprintf("%.0f build/s", float64(churnBuilds)/elapsed.Seconds()),
			per.Round(time.Microsecond).String(), "—",
			fmt.Sprintf("%d allocs, %d B/build",
				(after.Mallocs-before.Mallocs)/uint64(churnBuilds),
				(after.TotalAlloc-before.TotalAlloc)/uint64(churnBuilds)),
			"true",
		}, nil
	}

	arena := election.NewBuildArena()
	fresh, err := measureBuilds("fresh arena build", func() error {
		_, err := election.BuildDedicatedInto(arena, churnCfg)
		return err
	})
	if err != nil {
		return nil, err
	}
	var prev *election.Dedicated
	rebuilt, err := measureBuilds("rebuild-in-place", func() error {
		d, err := arena.RebuildInto(prev, churnCfg)
		prev = d
		return err
	})
	if err != nil {
		return nil, err
	}
	reg := service.New(service.Options{Shards: 2})
	defer reg.Close()
	if err := reg.Register("churn", churnCfg); err != nil {
		return nil, fmt.Errorf("E17 churn register: %w", err)
	}
	pipeline, err := measureBuilds("pipeline evict+re-register", func() error {
		reg.Evict("churn")
		return reg.Register("churn", churnCfg)
	})
	if err != nil {
		return nil, err
	}
	for _, r := range [][]string{fresh, rebuilt, pipeline} {
		table.AddRow(r...)
	}

	table.AddNote("zipf skew s=1.3 over %d keys (~60%% of elections hit the hottest key's shard); %d closed-loop clients, 4 shards, GOMAXPROCS=%d",
		nKeys, workers, runtime.GOMAXPROCS(0))
	table.AddNote("agreement: every served outcome — stolen or home-served — matched the direct reference for its key")
	table.AddNote("stolen share shows the mechanism; the throughput gain needs idle cores to steal onto (single-core hosts show ~1x, see BenchmarkStealHotKey on a multi-core runner for the speedup)")
	table.AddNote("churn rows build the same %d-node configuration; rebuild-in-place recycles the evicted algorithm's lists, report, phase table and decision (see BenchmarkRebuildInto vs BenchmarkBuildArena)", churnCfg.N())
	table.AddNote("pipeline row includes eviction, admission queueing and journal-free install on top of the rebuild itself")
	return table, nil
}
