package harness

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"

	"anonradio/internal/config"
	"anonradio/internal/election"
	"anonradio/internal/radio"
	"anonradio/internal/server"
	"anonradio/internal/service"
	"anonradio/internal/wal"
)

// This file implements the adversarial-airwaves experiments: E18 runs the
// canonical dedicated algorithm over a seeded lossy medium (radio.FaultPlan)
// and classifies the outcomes across every engine, E19 soaks the HTTP
// service with dynamic churn — keys evicted and re-admitted through the
// rebuild-in-place pipeline — while closed-loop clients keep electing.

// e18Points are the lossy-medium operating points E18 sweeps. Drop is the
// per-link per-round delivery-loss probability, Noise the per-node per-round
// spurious-collision probability.
type e18Point struct{ drop, noise float64 }

func e18Points(opts Options) []e18Point {
	if opts.Quick {
		return []e18Point{{0, 0}, {0.05, 0}, {0, 0.05}, {0.5, 0.1}}
	}
	return []e18Point{
		{0, 0},
		{0.01, 0}, {0.05, 0}, {0.2, 0}, {0.5, 0},
		{0, 0.05}, {0, 0.2},
		{0.2, 0.05}, {0.5, 0.1},
	}
}

// E18FaultedMedium measures how the canonical algorithm degrades when the
// medium misbehaves. The algorithm is deterministic and terminates at fixed
// local rounds, so a faulted election never hangs — it finishes within the
// round bound and either still elects the expected leader or fails in one
// of three observable ways (no leader, wrong leader, several leaders). For
// each (drop, noise) point the experiment runs many independently seeded
// fault plans and reports the outcome distribution.
//
// Every trial doubles as a cross-engine determinism check: the same fault
// seed is replayed on all four engines (sequential, parallel, concurrent,
// goroutine-per-node) and the outcomes must match the sequential reference
// bit-for-bit — fault decisions are pure functions of (seed, round, node),
// never of goroutine schedule. The (0, 0) row additionally pins the clean
// path: an all-zero plan must reproduce the fault-free outcome exactly.
func E18FaultedMedium(opts Options) (*Table, error) {
	trials := opts.trials(100, 12)
	cfg := config.StaggeredClique(12)
	if opts.Quick {
		cfg = config.StaggeredClique(8)
	}
	d, err := election.BuildDedicated(cfg)
	if err != nil {
		return nil, fmt.Errorf("E18 build: %w", err)
	}
	engines := []struct {
		name string
		eng  radio.Engine
	}{
		{"sequential", radio.Sequential{}},
		{"parallel", radio.Parallel{}},
		{"concurrent", radio.Concurrent{}},
		{"goroutine-per-node", radio.GoroutinePerNode{}},
	}

	// Clean reference outcome, once.
	clean, err := d.Elect(radio.Sequential{}, radio.Options{})
	if err != nil {
		return nil, fmt.Errorf("E18 clean reference: %w", err)
	}
	if err := d.Verify(clean); err != nil {
		return nil, fmt.Errorf("E18 clean reference: %w", err)
	}
	cleanLeader, cleanRounds := clean.Leader(), clean.Rounds

	table := NewTable("E18: protocol outcome over a seeded lossy medium (canonical algorithm, all engines)",
		"drop", "noise", "trials", "correct", "no leader", "wrong leader", "multi leader", "mean rounds", "engines agree")
	for _, pt := range e18Points(opts) {
		var correct, none, wrong, multi int
		var roundSum int
		agree := true
		for trial := 0; trial < trials; trial++ {
			plan := &radio.FaultPlan{Seed: uint64(trial) + 1, Drop: pt.drop, Noise: pt.noise}
			ref, err := d.Elect(radio.Sequential{}, radio.Options{Fault: plan})
			if err != nil {
				return nil, fmt.Errorf("E18 drop=%g noise=%g seed=%d: %w", pt.drop, pt.noise, plan.Seed, err)
			}
			leaders := append([]int(nil), ref.Leaders...)
			roundSum += ref.Rounds
			switch {
			case d.Verify(ref) == nil:
				correct++
			case len(leaders) == 0:
				none++
			case len(leaders) == 1:
				wrong++
			default:
				multi++
			}
			if pt.drop == 0 && pt.noise == 0 {
				if ref.Leader() != cleanLeader || ref.Rounds != cleanRounds {
					return nil, fmt.Errorf("E18 seed=%d: all-zero fault plan diverged from the clean medium", plan.Seed)
				}
			}
			// Replay the same seed on the other engines; a schedule-dependent
			// fault decision would show up here as a diverging outcome.
			for _, e := range engines[1:] {
				out, err := d.Elect(e.eng, radio.Options{Fault: plan})
				if err != nil {
					return nil, fmt.Errorf("E18 %s seed=%d: %w", e.name, plan.Seed, err)
				}
				if out.Rounds != ref.Rounds || len(out.Leaders) != len(leaders) {
					agree = false
					continue
				}
				for i := range leaders {
					if out.Leaders[i] != leaders[i] {
						agree = false
					}
				}
			}
		}
		if !agree {
			return nil, fmt.Errorf("E18 drop=%g noise=%g: engines diverged under the same fault seed", pt.drop, pt.noise)
		}
		pc := func(k int) string { return fmt.Sprintf("%d (%.0f%%)", k, 100*float64(k)/float64(trials)) }
		table.AddRow(
			fmt.Sprintf("%.2f", pt.drop),
			fmt.Sprintf("%.2f", pt.noise),
			fmt.Sprintf("%d", trials),
			pc(correct), pc(none), pc(wrong), pc(multi),
			fmt.Sprintf("%.1f", float64(roundSum)/float64(trials)),
			fmt.Sprintf("%v", agree),
		)
	}
	table.AddNote("staggered clique (n=%d), %d independently seeded fault plans per point, every plan replayed on all four engines", cfg.N(), trials)
	table.AddNote("the algorithm terminates at fixed local rounds, so a faulted election always finishes within the round bound — faults change the outcome class, never termination")
	table.AddNote("drop=0 noise=0 doubles as the clean-path check: an all-zero plan reproduced the fault-free leader and round count on every seed")
	return table, nil
}

// E19ChurnSoak soaks the served registry with dynamic churn: a durable
// registry (WAL + background checkpoints) is fronted by the HTTP server, a
// churn loop evicts and re-admits half the keys through POST /v1/soak/start
// while closed-loop HTTP clients elect on the stable keys the whole time.
// The table compares serving with the churn loop off and on — throughput,
// median and p99.9 latency — and reports the soak and WAL counters: cycles,
// re-admissions, admission retries, journal appends and completed
// checkpoints. The invariant under test is the one the soak driver
// guarantees: zero lost admissions (every eviction is repaired, Failures
// stays 0) and every stable-key election keeps succeeding while the
// admission pipeline churns underneath it.
func E19ChurnSoak(opts Options) (*Table, error) {
	// The soak is paced: with Interval=0 the churn loop rebuilds
	// back-to-back and on small hosts the admission builds own every core,
	// measuring CPU starvation instead of pipeline interference. A small
	// pause per cycle keeps churn continuous (hundreds of cycles per run)
	// while elections still get scheduler slots.
	workers, elections, interval := 8, 4000, int64(1000)
	if opts.Quick {
		workers, elections, interval = 4, 400, 2000
	}

	dir, err := os.MkdirTemp("", "anonradio-e19-*")
	if err != nil {
		return nil, fmt.Errorf("E19 tempdir: %w", err)
	}
	defer os.RemoveAll(dir)
	reg, report, err := service.Open(service.Options{
		Shards: 4,
		WAL:    service.WALOptions{Dir: dir, Sync: wal.SyncBatch, CheckpointRecords: 32},
	})
	if err != nil {
		return nil, fmt.Errorf("E19 open: %w", err)
	}
	defer reg.Close()
	if !report.Clean() {
		return nil, fmt.Errorf("E19: dirty recovery on a fresh directory: %+v", report)
	}

	stable := []string{"stable-clique", "stable-path"}
	stableCfgs := []*config.Config{config.StaggeredClique(10), config.StaggeredPath(9, 1)}
	churn := []server.SoakEntry{
		{Key: "churn-clique", Config: config.StaggeredClique(8).Marshal()},
		{Key: "churn-path", Config: config.StaggeredPath(7, 2).Marshal()},
	}
	for i, key := range stable {
		if err := reg.Register(key, stableCfgs[i]); err != nil {
			return nil, fmt.Errorf("E19 register %s: %w", key, err)
		}
	}
	for _, e := range churn {
		cfg, err := config.Unmarshal(e.Config)
		if err != nil {
			return nil, fmt.Errorf("E19 parse %s: %w", e.Key, err)
		}
		if err := reg.Register(e.Key, cfg); err != nil {
			return nil, fmt.Errorf("E19 register %s: %w", e.Key, err)
		}
	}

	srv := server.New(reg, server.Options{})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("E19 listen: %w", err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(l) }()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
		<-serveDone
	}()
	base := "http://" + l.Addr().String()
	client := &http.Client{}

	post := func(path string, body, out any) (int, error) {
		buf, err := json.Marshal(body)
		if err != nil {
			return 0, err
		}
		resp, err := client.Post(base+path, "application/json", bytes.NewReader(buf))
		if err != nil {
			return 0, err
		}
		defer resp.Body.Close()
		if out != nil {
			if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
				return resp.StatusCode, err
			}
		}
		return resp.StatusCode, nil
	}

	// Reference outcomes for the stable keys (also the warm-up).
	refs := make(map[string]server.Outcome, len(stable))
	for _, key := range stable {
		var out server.Outcome
		if code, err := post("/v1/elect", server.ElectRequest{Key: key}, &out); err != nil || code != http.StatusOK || !out.Elected {
			return nil, fmt.Errorf("E19 warm-up %s: code=%d out=%+v err=%v", key, code, out, err)
		}
		refs[key] = out
	}

	serve := func(mode string) ([]time.Duration, time.Duration, error) {
		perWorker := elections / workers
		lats := make([][]time.Duration, workers)
		errs := make([]error, workers)
		var wg sync.WaitGroup
		start := time.Now()
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				lat := make([]time.Duration, 0, perWorker)
				for i := 0; i < perWorker; i++ {
					key := stable[(w+i)%len(stable)]
					var out server.Outcome
					t0 := time.Now()
					code, err := post("/v1/elect", server.ElectRequest{Key: key}, &out)
					lat = append(lat, time.Since(t0))
					if err != nil || code != http.StatusOK {
						errs[w] = fmt.Errorf("%s elect %s: code=%d %v", mode, key, code, err)
						return
					}
					if ref := refs[key]; out.Leader != ref.Leader || out.Rounds != ref.Rounds {
						errs[w] = fmt.Errorf("%s elect %s: outcome %+v diverged from reference %+v", mode, key, out, ref)
						return
					}
				}
				lats[w] = lat
			}(w)
		}
		wg.Wait()
		elapsed := time.Since(start)
		var all []time.Duration
		for w := range lats {
			if errs[w] != nil {
				return nil, 0, errs[w]
			}
			all = append(all, lats[w]...)
		}
		sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
		return all, elapsed, nil
	}
	pct := func(all []time.Duration, p float64) time.Duration {
		return all[min(len(all)-1, int(float64(len(all))*p))]
	}

	table := NewTable("E19: HTTP churn soak (elections on stable keys while churned keys evict and re-admit)",
		"mode", "ops", "total time", "throughput", "p50", "p99.9", "soak cycles", "readmissions", "retries", "failures")

	quiet, quietElapsed, err := serve("churn off")
	if err != nil {
		return nil, err
	}
	table.AddRow("churn off", fmt.Sprintf("%d", len(quiet)),
		quietElapsed.Round(time.Millisecond).String(),
		fmt.Sprintf("%.0f elect/s", float64(len(quiet))/quietElapsed.Seconds()),
		pct(quiet, 0.50).Round(time.Microsecond).String(),
		pct(quiet, 0.999).Round(time.Microsecond).String(),
		"—", "—", "—", "—")

	var started server.SoakStatusResponse
	if code, err := post("/v1/soak/start", server.SoakStartRequest{Entries: churn, IntervalMicros: interval}, &started); err != nil || code != http.StatusOK || !started.Active {
		return nil, fmt.Errorf("E19 soak start: code=%d resp=%+v err=%v", code, started, err)
	}
	soaked, soakedElapsed, err := serve("churn on")
	if err != nil {
		return nil, err
	}
	var final server.SoakStatusResponse
	if code, err := post("/v1/soak/stop", struct{}{}, &final); err != nil || code != http.StatusOK || final.Active {
		return nil, fmt.Errorf("E19 soak stop: code=%d resp=%+v err=%v", code, final, err)
	}
	if final.Stats.Failures != 0 {
		return nil, fmt.Errorf("E19: %d lost admissions during the soak", final.Stats.Failures)
	}
	if final.Stats.Readmissions == 0 {
		return nil, fmt.Errorf("E19: the churn loop never cycled")
	}
	// Every churned key must still serve after the soak — no lost admissions.
	for _, e := range churn {
		var out server.Outcome
		if code, err := post("/v1/elect", server.ElectRequest{Key: e.Key}, &out); err != nil || code != http.StatusOK || !out.Elected {
			return nil, fmt.Errorf("E19 post-soak elect %s: code=%d out=%+v err=%v", e.Key, code, out, err)
		}
	}
	table.AddRow("churn on", fmt.Sprintf("%d", len(soaked)),
		soakedElapsed.Round(time.Millisecond).String(),
		fmt.Sprintf("%.0f elect/s", float64(len(soaked))/soakedElapsed.Seconds()),
		pct(soaked, 0.50).Round(time.Microsecond).String(),
		pct(soaked, 0.999).Round(time.Microsecond).String(),
		fmt.Sprintf("%d", final.Stats.Cycles),
		fmt.Sprintf("%d", final.Stats.Readmissions),
		fmt.Sprintf("%d", final.Stats.Retries),
		fmt.Sprintf("%d", final.Stats.Failures))

	ws := reg.WALStats()
	table.AddNote("%d closed-loop HTTP clients on %d stable keys; %d keys churned evict→re-admit through the rebuild-in-place admission pipeline", workers, len(stable), len(churn))
	table.AddNote("every served outcome matched its pre-soak reference; every churned key still served after the soak stopped (no lost admissions)")
	table.AddNote("durable registry: policy=%s, %d journal appends, %d completed checkpoints, %d records since last checkpoint", ws.Policy, ws.Appends, ws.Checkpoints, ws.RecordsSinceCheckpoint)
	return table, nil
}
