package harness

import (
	"fmt"
	"time"

	"anonradio/internal/config"
	"anonradio/internal/core"
	"anonradio/internal/election"
	"anonradio/internal/radio"
	"anonradio/internal/stats"
)

// This file implements the scaling experiments E1 (classifier time), E2
// (election round counts vs the O(n²σ) bound) and E8 (engine comparison).

// classifierWorkload is one family of configurations for E1.
type classifierWorkload struct {
	name string
	gen  func(n int, opts Options) *config.Config
}

func e1Workloads(opts Options) []classifierWorkload {
	rng := opts.rng()
	return []classifierWorkload{
		{"staggered-path", func(n int, _ Options) *config.Config { return config.StaggeredPath(n, 1) }},
		{"staggered-clique", func(n int, _ Options) *config.Config { return config.StaggeredClique(n) }},
		{"line-family-G", func(n int, _ Options) *config.Config {
			m := n / 4
			if m < 2 {
				m = 2
			}
			return config.LineFamilyG(m)
		}},
		{"random-tree", func(n int, _ Options) *config.Config {
			return config.RandomTreeConfig(n, config.UniformRandomTags{Span: 3}, rng)
		}},
		{"random-gnp", func(n int, _ Options) *config.Config {
			p := 8.0 / float64(n)
			if p > 1 {
				p = 1
			}
			return config.Random(n, p, config.UniformRandomTags{Span: 3}, rng)
		}},
	}
}

func e1Sizes(opts Options) []int {
	if opts.Quick {
		return []int{8, 16, 32}
	}
	return []int{16, 32, 64, 128, 256}
}

// E1ClassifierScaling measures the wall-clock time of Classify across graph
// families and sizes and fits the empirical scaling exponent, validating
// that the implementation stays within the O(n³Δ) bound of Theorem 3.17 (in
// practice far below it on sparse families).
func E1ClassifierScaling(opts Options) (*Table, error) {
	table := NewTable("E1: Classifier time scaling",
		"family", "n", "Δ", "σ", "iterations", "feasible", "time")
	for _, w := range e1Workloads(opts) {
		var ns, times []float64
		for _, n := range e1Sizes(opts) {
			cfg := w.gen(n, opts)
			start := time.Now()
			rep, err := core.Classify(cfg)
			elapsed := time.Since(start)
			if err != nil {
				return nil, fmt.Errorf("E1 %s n=%d: %w", w.name, n, err)
			}
			table.AddRow(w.name,
				fmt.Sprintf("%d", cfg.N()),
				fmt.Sprintf("%d", cfg.MaxDegree()),
				fmt.Sprintf("%d", cfg.Span()),
				fmt.Sprintf("%d", rep.Iterations()),
				fmt.Sprintf("%v", rep.Feasible()),
				elapsed.Round(time.Microsecond).String(),
			)
			ns = append(ns, float64(cfg.N()))
			times = append(times, float64(elapsed.Nanoseconds()))
		}
		if fit, err := stats.LogLogSlope(ns, times); err == nil {
			table.AddNote("%s: empirical time exponent ≈ n^%.2f (R²=%.3f); theorem bound is n³Δ",
				w.name, fit.Slope, fit.R2)
		}
	}
	return table, nil
}

func e2Params(opts Options) (sizes []int, spans []int, trials int) {
	if opts.Quick {
		return []int{6, 10, 16}, []int{1, 3}, opts.trials(0, 3)
	}
	return []int{8, 16, 32, 64}, []int{1, 2, 4, 8}, opts.trials(10, 3)
}

// E2ElectionRounds measures the number of global rounds the canonical
// dedicated algorithm needs on random feasible configurations, compared to
// the concrete per-configuration bound and to the asymptotic n²σ form of
// Theorem 3.15.
func E2ElectionRounds(opts Options) (*Table, error) {
	sizes, spans, trials := e2Params(opts)
	rng := opts.rng()
	table := NewTable("E2: Canonical election rounds vs O(n²σ) bound",
		"n", "σ", "feasible/trials", "mean rounds", "max rounds", "mean bound", "max/n²σ")
	for _, n := range sizes {
		for _, span := range spans {
			var rounds, bounds []float64
			feasible := 0
			for trial := 0; trial < trials; trial++ {
				cfg := config.Random(n, 4.0/float64(n), config.UniformRandomTags{Span: span}, rng)
				rep, err := core.Classify(cfg)
				if err != nil {
					return nil, fmt.Errorf("E2 n=%d σ=%d: %w", n, span, err)
				}
				if !rep.Feasible() {
					continue
				}
				feasible++
				d, err := election.BuildFromReport(rep)
				if err != nil {
					return nil, fmt.Errorf("E2 n=%d σ=%d: %w", n, span, err)
				}
				out, err := d.Elect(opts.engine(), radio.Options{})
				if err != nil {
					return nil, fmt.Errorf("E2 n=%d σ=%d: %w", n, span, err)
				}
				if err := d.Verify(out); err != nil {
					return nil, fmt.Errorf("E2 n=%d σ=%d: %w", n, span, err)
				}
				rounds = append(rounds, float64(out.Rounds))
				bounds = append(bounds, float64(d.RoundBound))
			}
			if feasible == 0 {
				table.AddRow(fmt.Sprintf("%d", n), fmt.Sprintf("%d", span),
					fmt.Sprintf("0/%d", trials), "-", "-", "-", "-")
				continue
			}
			rs := stats.Summarize(rounds)
			bs := stats.Summarize(bounds)
			asym := float64(n) * float64(n) * float64(maxInt(span, 1))
			table.AddRow(
				fmt.Sprintf("%d", n),
				fmt.Sprintf("%d", span),
				fmt.Sprintf("%d/%d", feasible, trials),
				fmt.Sprintf("%.1f", rs.Mean),
				fmt.Sprintf("%.0f", rs.Max),
				fmt.Sprintf("%.1f", bs.Mean),
				fmt.Sprintf("%.3f", rs.Max/asym),
			)
		}
	}
	table.AddNote("every run is verified: exactly one leader, equal to the classifier's designated node, within the per-configuration bound")
	return table, nil
}

func e8Sizes(opts Options) []int {
	if opts.Quick {
		return []int{8, 16}
	}
	return []int{16, 32, 64, 128}
}

// E8Engines compares the three engine implementations — the sequential
// reference, the worker-pool parallel executor, and the legacy
// goroutine-per-node coordinator — on identical canonical-DRIP workloads:
// wall-clock time, speedups, and a strict check that every engine produced
// identical histories.
func E8Engines(opts Options) (*Table, error) {
	rng := opts.rng()
	table := NewTable("E8: Sequential vs worker-pool vs goroutine-per-node engine",
		"n", "σ", "rounds", "seq time", "pool time", "gpn time", "pool/gpn speedup", "identical")
	for _, n := range e8Sizes(opts) {
		cfg := config.Random(n, 4.0/float64(n), config.DistinctRandomTags{}, rng)
		rep, err := core.Classify(cfg)
		if err != nil {
			return nil, fmt.Errorf("E8 n=%d: %w", n, err)
		}
		dg, err := election.BuildFromReport(rep)
		if err != nil {
			// Distinct tags occasionally still yield an infeasible
			// configuration; retry with a staggered clique which is always
			// feasible.
			cfg = config.StaggeredClique(n)
			rep, err = core.Classify(cfg)
			if err != nil {
				return nil, err
			}
			dg, err = election.BuildFromReport(rep)
			if err != nil {
				return nil, err
			}
		}
		run := func(e radio.Engine) (*radio.Result, time.Duration, error) {
			start := time.Now()
			res, err := e.Run(dg.Config, dg.DRIP, radio.Options{})
			return res, time.Since(start), err
		}
		seqRes, seqTime, err := run(radio.Sequential{})
		if err != nil {
			return nil, fmt.Errorf("E8 n=%d sequential: %w", n, err)
		}
		poolRes, poolTime, err := run(radio.Parallel{})
		if err != nil {
			return nil, fmt.Errorf("E8 n=%d parallel: %w", n, err)
		}
		gpnRes, gpnTime, err := run(radio.GoroutinePerNode{})
		if err != nil {
			return nil, fmt.Errorf("E8 n=%d goroutine-per-node: %w", n, err)
		}
		identical := seqRes.GlobalRounds == poolRes.GlobalRounds && seqRes.GlobalRounds == gpnRes.GlobalRounds
		for v := 0; v < cfg.N() && identical; v++ {
			identical = seqRes.Histories[v].Equal(poolRes.Histories[v]) &&
				seqRes.Histories[v].Equal(gpnRes.Histories[v])
		}
		table.AddRow(
			fmt.Sprintf("%d", cfg.N()),
			fmt.Sprintf("%d", cfg.Span()),
			fmt.Sprintf("%d", seqRes.GlobalRounds),
			seqTime.Round(time.Microsecond).String(),
			poolTime.Round(time.Microsecond).String(),
			gpnTime.Round(time.Microsecond).String(),
			fmt.Sprintf("%.2f", stats.Ratio(float64(gpnTime.Nanoseconds()), float64(poolTime.Nanoseconds()))),
			fmt.Sprintf("%v", identical),
		)
		if !identical {
			return nil, fmt.Errorf("E8 n=%d: engines diverged", n)
		}
	}
	table.AddNote("pool/gpn speedup > 1 means the worker-pool executor beat the goroutine-per-node coordinator it replaced; per-round protocol work is tiny, so the sequential engine usually still wins outright at these sizes")
	return table, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
