package harness

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"anonradio/internal/config"
	"anonradio/internal/election"
	"anonradio/internal/service"
)

// E14AdmissionIsolation measures whether elections on a shard stall behind
// a concurrent admission on the same shard — the operational flaw PR 5
// removed. One single-shard registry serves a hot key while a second
// goroutine keeps admitting a deliberately expensive configuration onto
// the *same* shard, in two modes: the retained pre-pipeline behavior
// (Options.BuildOnShard: the build runs on the shard worker, ahead of
// every queued election) and the admission pipeline (the build runs on a
// builder goroutine; the shard only sees an O(1) install). The table
// reports the election latency distribution of each mode against an
// idle baseline: build-on-shard drives the tail to the build duration and
// collapses throughput, the pipeline keeps the tail at the baseline.
func E14AdmissionIsolation(opts Options) (*Table, error) {
	hot := config.StaggeredClique(16)
	big := config.StaggeredPath(64, 100) // span 6300: a deliberately expensive build (~100ms class)
	dur := 2 * time.Second
	if opts.Quick {
		big = config.StaggeredPath(24, 40) // span 920: a few milliseconds per build
		dur = 250 * time.Millisecond
	}

	// The cost being hidden: one direct build of the expensive configuration.
	buildStart := time.Now()
	if _, err := election.BuildDedicated(big); err != nil {
		return nil, fmt.Errorf("E14 reference build: %w", err)
	}
	buildTime := time.Since(buildStart)

	type row struct {
		mode       string
		elections  int
		admissions int
		p50        time.Duration
		p999       time.Duration
		max        time.Duration
		stalled    float64 // share of the window spent inside >1ms elections
	}

	measure := func(mode string, buildOnShard, admitting bool) (row, error) {
		reg := service.New(service.Options{Shards: 1, Builders: 1, BuildOnShard: buildOnShard})
		defer reg.Close()
		if err := reg.Register("hot", hot); err != nil {
			return row{}, fmt.Errorf("E14 register hot: %w", err)
		}
		warm, err := reg.Elect("hot")
		if err != nil || !warm.Elected() {
			return row{}, fmt.Errorf("E14 warm-up: %+v %v", warm, err)
		}
		var (
			stop       atomic.Bool
			admitWG    sync.WaitGroup
			admissions int
		)
		if admitting {
			admitWG.Add(1)
			go func() {
				defer admitWG.Done()
				for i := 0; !stop.Load(); i++ {
					if err := reg.Register(fmt.Sprintf("big-%d", i), big); err != nil {
						return
					}
					admissions++
				}
			}()
		}
		lat := make([]time.Duration, 0, 4096)
		deadline := time.Now().Add(dur)
		for time.Now().Before(deadline) {
			start := time.Now()
			out, err := reg.Elect("hot")
			if err != nil || !out.Elected() || out.Leader != warm.Leader || out.Rounds != warm.Rounds {
				stop.Store(true)
				admitWG.Wait()
				return row{}, fmt.Errorf("E14 elect (%s): %+v %v, want leader %d", mode, out, err, warm.Leader)
			}
			lat = append(lat, time.Since(start))
		}
		stop.Store(true)
		admitWG.Wait()
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		var stallTime time.Duration
		for _, d := range lat {
			if d > time.Millisecond {
				stallTime += d
			}
		}
		pct := func(p float64) time.Duration { return lat[min(len(lat)-1, int(float64(len(lat))*p))] }
		return row{
			mode:       mode,
			elections:  len(lat),
			admissions: admissions,
			p50:        pct(0.50),
			p999:       pct(0.999),
			max:        lat[len(lat)-1],
			stalled:    float64(stallTime) / float64(dur),
		}, nil
	}

	rows := []struct {
		mode                    string
		buildOnShard, admitting bool
	}{
		{"idle baseline", false, false},
		{"build-on-shard (before)", true, true},
		{"pipeline (after)", false, true},
	}
	table := NewTable("E14: Election latency on a shard during admissions on the same shard",
		"mode", "elections", "admissions", "p50", "p99.9", "max", "stall share")
	for _, rc := range rows {
		r, err := measure(rc.mode, rc.buildOnShard, rc.admitting)
		if err != nil {
			return nil, err
		}
		table.AddRow(
			r.mode,
			fmt.Sprintf("%d", r.elections),
			fmt.Sprintf("%d", r.admissions),
			r.p50.Round(time.Microsecond).String(),
			r.p999.Round(time.Microsecond).String(),
			r.max.Round(time.Microsecond).String(),
			fmt.Sprintf("%.1f%%", 100*r.stalled),
		)
	}
	table.AddNote("one shard, one builder, one closed-loop elect client; the admitted configuration builds in ~%s (cold) and always lands on the serving shard",
		buildTime.Round(time.Millisecond))
	table.AddNote("stall share: time the elect client spent inside >1ms elections, as a fraction of the window — a queued-behind-a-build election holds the client for the whole build")
	table.AddNote("build-on-shard (the retained pre-PR-5 mode, service.Options.BuildOnShard) parks every queued election for a full non-preemptible build; the pipeline never queues an election behind a build (on a single-core host the remaining tail is scheduler time-slicing against the builder, not queueing)")
	return table, nil
}
