package graph

import (
	"fmt"
	"math/rand"
)

// This file contains randomized graph generators. Every generator takes an
// explicit *rand.Rand so that workloads are reproducible from a seed.

// RandomGNP returns an Erdős–Rényi graph G(n,p): every unordered pair of
// distinct nodes is an edge independently with probability p.
func RandomGNP(n int, p float64, rng *rand.Rand) *Graph {
	if p < 0 || p > 1 {
		panic(fmt.Sprintf("graph: probability %v out of range [0,1]", p))
	}
	g := New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				g.AddEdge(u, v)
			}
		}
	}
	return g
}

// RandomConnectedGNP returns a connected graph sampled by first drawing a
// uniform random spanning tree (random Prüfer-like attachment) and then
// adding each remaining pair as an edge with probability p. The result is
// always connected, which is what the radio-network model requires.
func RandomConnectedGNP(n int, p float64, rng *rand.Rand) *Graph {
	if n <= 0 {
		return New(n)
	}
	g := RandomTree(n, rng)
	if p <= 0 {
		return g
	}
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if !g.HasEdge(u, v) && rng.Float64() < p {
				g.AddEdge(u, v)
			}
		}
	}
	return g
}

// RandomTree returns a uniformly-random labeled tree on n nodes generated
// from a random Prüfer sequence. For n <= 2 the unique tree is returned.
func RandomTree(n int, rng *rand.Rand) *Graph {
	g := New(n)
	switch {
	case n <= 1:
		return g
	case n == 2:
		g.AddEdge(0, 1)
		return g
	}
	prufer := make([]int, n-2)
	for i := range prufer {
		prufer[i] = rng.Intn(n)
	}
	degree := make([]int, n)
	for i := range degree {
		degree[i] = 1
	}
	for _, v := range prufer {
		degree[v]++
	}
	// Standard Prüfer decoding using a pointer+leaf scan; O(n^2) worst case
	// but n is small in our workloads and the code stays dependency-free.
	used := make([]bool, n)
	for _, v := range prufer {
		leaf := -1
		for u := 0; u < n; u++ {
			if degree[u] == 1 && !used[u] {
				leaf = u
				break
			}
		}
		g.AddEdge(leaf, v)
		used[leaf] = true
		degree[leaf]--
		degree[v]--
	}
	// Connect the final two remaining nodes of degree 1.
	first := -1
	for u := 0; u < n; u++ {
		if degree[u] == 1 && !used[u] {
			if first < 0 {
				first = u
			} else {
				g.AddEdge(first, u)
				break
			}
		}
	}
	return g
}

// RandomRegularish returns a connected graph where every node has degree
// close to d: it starts from a random tree and then repeatedly adds random
// edges between nodes of degree < d until no such pair can be found (or
// attempts are exhausted). It is not an exact regular-graph sampler but
// provides bounded-degree workloads for the Δ-scaling experiments.
func RandomRegularish(n, d int, rng *rand.Rand) *Graph {
	if d < 1 {
		panic(fmt.Sprintf("graph: RandomRegularish requires d >= 1, got %d", d))
	}
	g := RandomTree(n, rng)
	attempts := 20 * n * d
	for i := 0; i < attempts; i++ {
		u := rng.Intn(n)
		v := rng.Intn(n)
		if u == v || g.Degree(u) >= d || g.Degree(v) >= d || g.HasEdge(u, v) {
			continue
		}
		g.AddEdge(u, v)
	}
	return g
}

// RandomCaterpillar returns a random caterpillar tree on approximately n
// nodes: a spine of random length with the remaining nodes attached as legs
// at random spine positions.
func RandomCaterpillar(n int, rng *rand.Rand) *Graph {
	if n <= 2 {
		return Path(n)
	}
	spine := 2 + rng.Intn(n-2)
	g := New(n)
	for v := 0; v+1 < spine; v++ {
		g.AddEdge(v, v+1)
	}
	for v := spine; v < n; v++ {
		g.AddEdge(rng.Intn(spine), v)
	}
	return g
}

// RandomSubdividedStar returns a spider: a centre node with arms of random
// lengths summing to n-1 nodes.
func RandomSubdividedStar(n int, rng *rand.Rand) *Graph {
	if n <= 2 {
		return Path(n)
	}
	g := New(n)
	arms := 2 + rng.Intn(n-2)
	if arms > n-1 {
		arms = n - 1
	}
	next := 1
	attach := make([]int, arms) // last node of each arm, starts at the centre
	for i := range attach {
		attach[i] = 0
	}
	for next < n {
		a := rng.Intn(arms)
		g.AddEdge(attach[a], next)
		attach[a] = next
		next++
	}
	return g
}
