package graph

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestNewEmpty(t *testing.T) {
	g := New(0)
	if g.N() != 0 || g.M() != 0 {
		t.Fatalf("empty graph: got n=%d m=%d", g.N(), g.M())
	}
	if !g.Connected() {
		t.Fatalf("empty graph should be vacuously connected")
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("empty graph failed validation: %v", err)
	}
}

func TestNewNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("New(-1) should panic")
		}
	}()
	New(-1)
}

func TestAddEdgeBasic(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(3, 2)
	if g.M() != 3 {
		t.Fatalf("expected 3 edges, got %d", g.M())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Fatalf("edge 0-1 missing or asymmetric")
	}
	if g.HasEdge(0, 2) {
		t.Fatalf("unexpected edge 0-2")
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("validation failed: %v", err)
	}
}

func TestAddEdgeIdempotent(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 0)
	g.AddEdge(0, 1)
	if g.M() != 1 {
		t.Fatalf("duplicate AddEdge should be a no-op, got m=%d", g.M())
	}
	if len(g.Neighbors(0)) != 1 || len(g.Neighbors(1)) != 1 {
		t.Fatalf("duplicate AddEdge corrupted adjacency: %v %v", g.Neighbors(0), g.Neighbors(1))
	}
}

func TestAddEdgeSelfLoopPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("self-loop should panic")
		}
	}()
	g := New(2)
	g.AddEdge(1, 1)
}

func TestEdgeOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("out-of-range edge should panic")
		}
	}()
	g := New(2)
	g.AddEdge(0, 2)
}

func TestRemoveEdge(t *testing.T) {
	g := Cycle(5)
	if !g.RemoveEdge(0, 1) {
		t.Fatalf("RemoveEdge(0,1) should report true")
	}
	if g.RemoveEdge(0, 1) {
		t.Fatalf("removing missing edge should report false")
	}
	if g.M() != 4 {
		t.Fatalf("expected 4 edges after removal, got %d", g.M())
	}
	if g.HasEdge(0, 1) || g.HasEdge(1, 0) {
		t.Fatalf("edge 0-1 still present after removal")
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("validation failed after removal: %v", err)
	}
}

func TestCloneIndependence(t *testing.T) {
	g := Path(5)
	c := g.Clone()
	if !g.Equal(c) {
		t.Fatalf("clone should equal original")
	}
	c.AddEdge(0, 4)
	if g.Equal(c) {
		t.Fatalf("mutating clone should not affect original")
	}
	if g.HasEdge(0, 4) {
		t.Fatalf("original gained edge from clone mutation")
	}
}

func TestNeighborsSorted(t *testing.T) {
	g := New(6)
	g.AddEdge(3, 5)
	g.AddEdge(3, 0)
	g.AddEdge(3, 4)
	g.AddEdge(3, 1)
	nb := g.Neighbors(3)
	want := []int{0, 1, 4, 5}
	if len(nb) != len(want) {
		t.Fatalf("neighbour count mismatch: %v", nb)
	}
	for i := range want {
		if nb[i] != want[i] {
			t.Fatalf("neighbours not sorted: got %v want %v", nb, want)
		}
	}
}

func TestDegrees(t *testing.T) {
	g := Star(7)
	if g.Degree(0) != 6 {
		t.Fatalf("star centre degree = %d, want 6", g.Degree(0))
	}
	if g.Degree(3) != 1 {
		t.Fatalf("star leaf degree = %d, want 1", g.Degree(3))
	}
	if g.MaxDegree() != 6 || g.MinDegree() != 1 {
		t.Fatalf("star degrees: max=%d min=%d", g.MaxDegree(), g.MinDegree())
	}
	hist := g.DegreeHistogram()
	if hist[1] != 6 || hist[6] != 1 {
		t.Fatalf("degree histogram wrong: %v", hist)
	}
}

func TestEdgesList(t *testing.T) {
	g := Path(4)
	edges := g.Edges()
	want := [][2]int{{0, 1}, {1, 2}, {2, 3}}
	if len(edges) != len(want) {
		t.Fatalf("edge list length %d, want %d", len(edges), len(want))
	}
	for i := range want {
		if edges[i] != want[i] {
			t.Fatalf("edges[%d] = %v, want %v", i, edges[i], want[i])
		}
	}
}

func TestEqual(t *testing.T) {
	a := Cycle(4)
	b := Cycle(4)
	if !a.Equal(b) {
		t.Fatalf("identical cycles should be equal")
	}
	b.RemoveEdge(0, 1)
	b.AddEdge(0, 2)
	if a.Equal(b) {
		t.Fatalf("different edge sets should not be equal")
	}
	if a.Equal(Cycle(5)) {
		t.Fatalf("different sizes should not be equal")
	}
}

func TestBFSPath(t *testing.T) {
	g := Path(6)
	dist := g.BFS(0)
	for v := 0; v < 6; v++ {
		if dist[v] != v {
			t.Fatalf("path BFS distance from 0 to %d = %d, want %d", v, dist[v], v)
		}
	}
	dist = g.BFS(3)
	want := []int{3, 2, 1, 0, 1, 2}
	for v := range want {
		if dist[v] != want[v] {
			t.Fatalf("path BFS from 3: dist[%d]=%d want %d", v, dist[v], want[v])
		}
	}
}

func TestBFSUnreachable(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(2, 3)
	dist := g.BFS(0)
	if dist[2] != -1 || dist[3] != -1 {
		t.Fatalf("unreachable nodes should have distance -1: %v", dist)
	}
	if g.Connected() {
		t.Fatalf("two-component graph reported connected")
	}
}

func TestBFSTree(t *testing.T) {
	g := CompleteBinaryTree(7)
	parent, dist := g.BFSTree(0)
	if parent[0] != 0 || dist[0] != 0 {
		t.Fatalf("root parent/dist wrong: %d %d", parent[0], dist[0])
	}
	for v := 1; v < 7; v++ {
		want := (v - 1) / 2
		if parent[v] != want {
			t.Fatalf("parent[%d]=%d want %d", v, parent[v], want)
		}
		if dist[v] != dist[want]+1 {
			t.Fatalf("dist[%d]=%d inconsistent with parent dist %d", v, dist[v], dist[want])
		}
	}
}

func TestComponents(t *testing.T) {
	g := New(7)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(4, 5)
	comps := g.Components()
	if len(comps) != 4 {
		t.Fatalf("expected 4 components, got %d: %v", len(comps), comps)
	}
	if len(comps[0]) != 3 || comps[0][0] != 0 {
		t.Fatalf("first component wrong: %v", comps[0])
	}
	if len(comps[1]) != 1 || comps[1][0] != 3 {
		t.Fatalf("singleton component wrong: %v", comps[1])
	}
}

func TestDiameterRadius(t *testing.T) {
	cases := []struct {
		name     string
		g        *Graph
		diameter int
		radius   int
	}{
		{"path6", Path(6), 5, 3},
		{"cycle6", Cycle(6), 3, 3},
		{"star5", Star(5), 2, 1},
		{"complete4", Complete(4), 1, 1},
		{"single", New(1), 0, 0},
		{"grid3x3", Grid(3, 3), 4, 2},
	}
	for _, tc := range cases {
		if d := tc.g.Diameter(); d != tc.diameter {
			t.Errorf("%s: diameter=%d want %d", tc.name, d, tc.diameter)
		}
		if r := tc.g.Radius(); r != tc.radius {
			t.Errorf("%s: radius=%d want %d", tc.name, r, tc.radius)
		}
	}
}

func TestDiameterDisconnected(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1)
	if g.Diameter() != -1 || g.Radius() != -1 {
		t.Fatalf("disconnected graph should have diameter/radius -1")
	}
	if g.Eccentricity(0) != -1 {
		t.Fatalf("eccentricity in disconnected graph should be -1")
	}
}

func TestIsTree(t *testing.T) {
	if !Path(5).IsTree() {
		t.Errorf("path should be a tree")
	}
	if !Star(8).IsTree() {
		t.Errorf("star should be a tree")
	}
	if Cycle(5).IsTree() {
		t.Errorf("cycle should not be a tree")
	}
	if New(0).IsTree() {
		t.Errorf("empty graph should not be a tree")
	}
	disconnected := New(4)
	disconnected.AddEdge(0, 1)
	disconnected.AddEdge(2, 3)
	// n-1 edges would be 3; this has 2, but add a redundant edge to get 3
	disconnected.AddEdge(1, 0) // no-op
	if disconnected.IsTree() {
		t.Errorf("disconnected graph should not be a tree")
	}
}

func TestFamilySizes(t *testing.T) {
	cases := []struct {
		name string
		g    *Graph
		n, m int
	}{
		{"path1", Path(1), 1, 0},
		{"path5", Path(5), 5, 4},
		{"cycle3", Cycle(3), 3, 3},
		{"cycle8", Cycle(8), 8, 8},
		{"star1", Star(1), 1, 0},
		{"star6", Star(6), 6, 5},
		{"complete5", Complete(5), 5, 10},
		{"bipartite23", CompleteBipartite(2, 3), 5, 6},
		{"grid2x3", Grid(2, 3), 6, 7},
		{"torus3x3", Torus(3, 3), 9, 18},
		{"hypercube3", Hypercube(3), 8, 12},
		{"hypercube0", Hypercube(0), 1, 0},
		{"btree7", CompleteBinaryTree(7), 7, 6},
		{"caterpillar", Caterpillar(3, 2), 9, 8},
		{"barbell", Barbell(3, 2), 8, 9},
		{"lollipop", Lollipop(4, 3), 7, 9},
		{"wheel6", Wheel(6), 6, 10},
	}
	for _, tc := range cases {
		if tc.g.N() != tc.n || tc.g.M() != tc.m {
			t.Errorf("%s: got n=%d m=%d, want n=%d m=%d", tc.name, tc.g.N(), tc.g.M(), tc.n, tc.m)
		}
		if err := tc.g.Validate(); err != nil {
			t.Errorf("%s: validation failed: %v", tc.name, err)
		}
		if tc.g.N() > 0 && !tc.g.Connected() {
			t.Errorf("%s: generator produced a disconnected graph", tc.name)
		}
	}
}

func TestFamilyPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s should panic", name)
			}
		}()
		f()
	}
	mustPanic("Cycle(2)", func() { Cycle(2) })
	mustPanic("Torus(2,3)", func() { Torus(2, 3) })
	mustPanic("Wheel(3)", func() { Wheel(3) })
	mustPanic("Hypercube(-1)", func() { Hypercube(-1) })
	mustPanic("Caterpillar(0,1)", func() { Caterpillar(0, 1) })
	mustPanic("Barbell(0,0)", func() { Barbell(0, 0) })
	mustPanic("Lollipop(0,0)", func() { Lollipop(0, 0) })
	mustPanic("Grid(-1,2)", func() { Grid(-1, 2) })
}

func TestHypercubeStructure(t *testing.T) {
	g := Hypercube(4)
	for v := 0; v < g.N(); v++ {
		if g.Degree(v) != 4 {
			t.Fatalf("hypercube Q4 node %d has degree %d, want 4", v, g.Degree(v))
		}
	}
	if g.Diameter() != 4 {
		t.Fatalf("hypercube Q4 diameter = %d, want 4", g.Diameter())
	}
}

func TestTorusRegular(t *testing.T) {
	g := Torus(4, 5)
	for v := 0; v < g.N(); v++ {
		if g.Degree(v) != 4 {
			t.Fatalf("torus node %d has degree %d, want 4", v, g.Degree(v))
		}
	}
}

func TestRandomTreeIsTree(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for n := 1; n <= 40; n++ {
		g := RandomTree(n, rng)
		if n >= 1 && !g.IsTree() && n > 0 {
			if n == 0 {
				continue
			}
			t.Fatalf("RandomTree(%d) is not a tree: n=%d m=%d connected=%v", n, g.N(), g.M(), g.Connected())
		}
	}
}

func TestRandomGNPEdgeProbability(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 60
	p := 0.3
	total := 0
	trials := 20
	for i := 0; i < trials; i++ {
		g := RandomGNP(n, p, rng)
		total += g.M()
		if err := g.Validate(); err != nil {
			t.Fatalf("G(n,p) validation failed: %v", err)
		}
	}
	expected := float64(trials) * p * float64(n*(n-1)/2)
	got := float64(total)
	if got < 0.8*expected || got > 1.2*expected {
		t.Fatalf("G(n,p) edge count %v far from expectation %v", got, expected)
	}
}

func TestRandomGNPExtremes(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	if g := RandomGNP(10, 0, rng); g.M() != 0 {
		t.Fatalf("G(n,0) should have no edges, got %d", g.M())
	}
	if g := RandomGNP(10, 1, rng); g.M() != 45 {
		t.Fatalf("G(n,1) should be complete, got %d edges", g.M())
	}
	defer func() {
		if recover() == nil {
			t.Fatalf("invalid probability should panic")
		}
	}()
	RandomGNP(5, 1.5, rng)
}

func TestRandomConnectedGNP(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, p := range []float64{0, 0.05, 0.3, 0.9} {
		for _, n := range []int{1, 2, 5, 20, 50} {
			g := RandomConnectedGNP(n, p, rng)
			if n > 0 && !g.Connected() {
				t.Fatalf("RandomConnectedGNP(n=%d,p=%v) disconnected", n, p)
			}
			if err := g.Validate(); err != nil {
				t.Fatalf("RandomConnectedGNP validation failed: %v", err)
			}
		}
	}
}

func TestRandomRegularishDegreeBound(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, d := range []int{2, 3, 5} {
		g := RandomRegularish(30, d, rng)
		if !g.Connected() {
			t.Fatalf("RandomRegularish should stay connected")
		}
		for v := 0; v < g.N(); v++ {
			// The initial tree may force some node above d (a tree node can
			// have high degree), so only check that the builder didn't blow
			// far past the target.
			if g.Degree(v) > d && g.Degree(v) > g.N()-1 {
				t.Fatalf("degree bound violated at %d: %d", v, g.Degree(v))
			}
		}
	}
}

func TestRandomCaterpillarAndSpider(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, n := range []int{1, 2, 3, 10, 25} {
		c := RandomCaterpillar(n, rng)
		if n > 0 && (!c.Connected() || c.M() != n-1) {
			t.Fatalf("RandomCaterpillar(%d) not a tree: m=%d connected=%v", n, c.M(), c.Connected())
		}
		s := RandomSubdividedStar(n, rng)
		if n > 0 && (!s.Connected() || s.M() != n-1) {
			t.Fatalf("RandomSubdividedStar(%d) not a tree: m=%d connected=%v", n, s.M(), s.Connected())
		}
	}
}

func TestPropertyRandomTreeAlwaysTree(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	f := func(seed int64, size uint8) bool {
		n := int(size%50) + 1
		local := rand.New(rand.NewSource(seed))
		g := RandomTree(n, local)
		return g.N() == n && g.M() == n-1 && g.Connected() && g.Validate() == nil
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatalf("property failed: %v", err)
	}
}

func TestPropertyAddRemoveEdgeInverse(t *testing.T) {
	f := func(seed int64, size uint8) bool {
		n := int(size%30) + 2
		rng := rand.New(rand.NewSource(seed))
		g := RandomConnectedGNP(n, 0.3, rng)
		before := g.Clone()
		u := rng.Intn(n)
		v := rng.Intn(n)
		if u == v {
			return true
		}
		had := g.HasEdge(u, v)
		if had {
			g.RemoveEdge(u, v)
			g.AddEdge(u, v)
		} else {
			g.AddEdge(u, v)
			g.RemoveEdge(u, v)
		}
		return g.Equal(before) && g.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatalf("property failed: %v", err)
	}
}

func TestPropertyBFSDistanceTriangle(t *testing.T) {
	// For connected graphs, dist(a,c) <= dist(a,b) + dist(b,c).
	f := func(seed int64, size uint8) bool {
		n := int(size%25) + 3
		rng := rand.New(rand.NewSource(seed))
		g := RandomConnectedGNP(n, 0.2, rng)
		a, b, c := rng.Intn(n), rng.Intn(n), rng.Intn(n)
		da := g.BFS(a)
		db := g.BFS(b)
		return da[c] <= da[b]+db[c]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatalf("triangle inequality violated: %v", err)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	graphs := []*Graph{
		New(0), New(1), Path(5), Cycle(6), Complete(4), Grid(3, 4), Star(9),
	}
	for i, g := range graphs {
		s := g.Marshal()
		h, err := Unmarshal(s)
		if err != nil {
			t.Fatalf("graph %d: decode failed: %v\n%s", i, err, s)
		}
		if !g.Equal(h) {
			t.Fatalf("graph %d: round-trip mismatch", i)
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	cases := []string{
		"",                          // missing nodes
		"edge 0 1",                  // edge before nodes
		"nodes 2\nnodes 3",          // duplicate nodes
		"nodes x",                   // bad node count
		"nodes -3",                  // negative
		"nodes 2\nedge 0",           // too few fields
		"nodes 2\nedge 0 5",         // out of range
		"nodes 2\nedge 1 1",         // self loop
		"nodes 2\nedge a b",         // non-numeric
		"nodes 2\nfrobnicate 1 2",   // unknown directive
		"nodes 2\nnodes 2\nedge 01", // garbage
	}
	for i, c := range cases {
		if _, err := Unmarshal(c); err == nil {
			t.Errorf("case %d (%q): expected error, got nil", i, c)
		}
	}
}

func TestDecodeWithCommentsAndBlanks(t *testing.T) {
	src := "# a comment\n\nnodes 3\n# another\nedge 0 1\n\nedge 1 2\n"
	g, err := Unmarshal(src)
	if err != nil {
		t.Fatalf("decode failed: %v", err)
	}
	if !g.Equal(Path(3)) {
		t.Fatalf("decoded graph does not match P3")
	}
}

func TestDOTOutput(t *testing.T) {
	g := Path(3)
	dot := g.DOT("p 3!")
	if !strings.HasPrefix(dot, "graph p_3_ {") {
		t.Fatalf("DOT name not sanitized: %q", dot)
	}
	if !strings.Contains(dot, "n0 -- n1;") || !strings.Contains(dot, "n1 -- n2;") {
		t.Fatalf("DOT missing edges:\n%s", dot)
	}
	if got := New(1).DOT(""); !strings.Contains(got, "graph G {") {
		t.Fatalf("empty DOT name should default to G: %q", got)
	}
}

func TestStringer(t *testing.T) {
	s := Complete(4).String()
	if !strings.Contains(s, "n=4") || !strings.Contains(s, "m=6") {
		t.Fatalf("String() = %q", s)
	}
}
