package graph

import "fmt"

// This file contains deterministic graph generators for the standard
// topologies used throughout the experiments: paths, cycles, stars, complete
// graphs, complete bipartite graphs, grids, tori, hypercubes, binary trees,
// caterpillars and barbells. All generators return connected graphs (for
// positive sizes) and are fully deterministic.

// Path returns the path graph P_n on n nodes: 0-1-2-...-(n-1).
func Path(n int) *Graph {
	g := New(n)
	for v := 0; v+1 < n; v++ {
		g.AddEdge(v, v+1)
	}
	return g
}

// Cycle returns the cycle graph C_n on n >= 3 nodes. It panics for n < 3.
func Cycle(n int) *Graph {
	if n < 3 {
		panic(fmt.Sprintf("graph: cycle requires n >= 3, got %d", n))
	}
	g := Path(n)
	g.AddEdge(n-1, 0)
	return g
}

// Star returns the star graph on n nodes with node 0 as the centre.
func Star(n int) *Graph {
	g := New(n)
	for v := 1; v < n; v++ {
		g.AddEdge(0, v)
	}
	return g
}

// Complete returns the complete graph K_n.
func Complete(n int) *Graph {
	g := New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			g.AddEdge(u, v)
		}
	}
	return g
}

// CompleteBipartite returns the complete bipartite graph K_{a,b} with parts
// {0..a-1} and {a..a+b-1}.
func CompleteBipartite(a, b int) *Graph {
	g := New(a + b)
	for u := 0; u < a; u++ {
		for v := 0; v < b; v++ {
			g.AddEdge(u, a+v)
		}
	}
	return g
}

// Grid returns the rows×cols grid graph. Node (r,c) has index r*cols+c.
func Grid(rows, cols int) *Graph {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("graph: negative grid dimensions %dx%d", rows, cols))
	}
	g := New(rows * cols)
	idx := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				g.AddEdge(idx(r, c), idx(r, c+1))
			}
			if r+1 < rows {
				g.AddEdge(idx(r, c), idx(r+1, c))
			}
		}
	}
	return g
}

// Torus returns the rows×cols torus (grid with wrap-around edges). Both
// dimensions must be at least 3 so that the wrap edges do not duplicate grid
// edges or create self-loops.
func Torus(rows, cols int) *Graph {
	if rows < 3 || cols < 3 {
		panic(fmt.Sprintf("graph: torus requires dimensions >= 3, got %dx%d", rows, cols))
	}
	g := Grid(rows, cols)
	idx := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		g.AddEdge(idx(r, cols-1), idx(r, 0))
	}
	for c := 0; c < cols; c++ {
		g.AddEdge(idx(rows-1, c), idx(0, c))
	}
	return g
}

// Hypercube returns the d-dimensional hypercube Q_d on 2^d nodes, where nodes
// u and v are adjacent iff their indices differ in exactly one bit.
func Hypercube(d int) *Graph {
	if d < 0 || d > 30 {
		panic(fmt.Sprintf("graph: hypercube dimension %d out of range [0,30]", d))
	}
	n := 1 << uint(d)
	g := New(n)
	for u := 0; u < n; u++ {
		for b := 0; b < d; b++ {
			v := u ^ (1 << uint(b))
			if u < v {
				g.AddEdge(u, v)
			}
		}
	}
	return g
}

// CompleteBinaryTree returns a complete binary tree with n nodes, where node
// v has children 2v+1 and 2v+2 when those indices are below n.
func CompleteBinaryTree(n int) *Graph {
	g := New(n)
	for v := 0; v < n; v++ {
		l, r := 2*v+1, 2*v+2
		if l < n {
			g.AddEdge(v, l)
		}
		if r < n {
			g.AddEdge(v, r)
		}
	}
	return g
}

// Caterpillar returns a caterpillar tree: a spine path of length spine with
// legs pendant nodes attached to every spine node. The total node count is
// spine*(1+legs).
func Caterpillar(spine, legs int) *Graph {
	if spine < 1 || legs < 0 {
		panic(fmt.Sprintf("graph: invalid caterpillar parameters spine=%d legs=%d", spine, legs))
	}
	g := New(spine * (1 + legs))
	for v := 0; v+1 < spine; v++ {
		g.AddEdge(v, v+1)
	}
	next := spine
	for v := 0; v < spine; v++ {
		for l := 0; l < legs; l++ {
			g.AddEdge(v, next)
			next++
		}
	}
	return g
}

// Barbell returns the barbell graph: two cliques K_k joined by a path of
// pathLen intermediate nodes (pathLen may be 0, in which case one node of the
// first clique is adjacent to one node of the second).
func Barbell(k, pathLen int) *Graph {
	if k < 1 || pathLen < 0 {
		panic(fmt.Sprintf("graph: invalid barbell parameters k=%d pathLen=%d", k, pathLen))
	}
	g := New(2*k + pathLen)
	for u := 0; u < k; u++ {
		for v := u + 1; v < k; v++ {
			g.AddEdge(u, v)
			g.AddEdge(k+pathLen+u, k+pathLen+v)
		}
	}
	prev := k - 1
	for i := 0; i < pathLen; i++ {
		g.AddEdge(prev, k+i)
		prev = k + i
	}
	g.AddEdge(prev, k+pathLen)
	return g
}

// Lollipop returns a clique K_k with a path of pathLen nodes attached to node
// k-1 of the clique.
func Lollipop(k, pathLen int) *Graph {
	if k < 1 || pathLen < 0 {
		panic(fmt.Sprintf("graph: invalid lollipop parameters k=%d pathLen=%d", k, pathLen))
	}
	g := New(k + pathLen)
	for u := 0; u < k; u++ {
		for v := u + 1; v < k; v++ {
			g.AddEdge(u, v)
		}
	}
	prev := k - 1
	for i := 0; i < pathLen; i++ {
		g.AddEdge(prev, k+i)
		prev = k + i
	}
	return g
}

// Wheel returns the wheel graph W_n: a cycle on n-1 nodes (1..n-1) plus a hub
// node 0 adjacent to every cycle node. Requires n >= 4.
func Wheel(n int) *Graph {
	if n < 4 {
		panic(fmt.Sprintf("graph: wheel requires n >= 4, got %d", n))
	}
	g := New(n)
	for v := 1; v < n; v++ {
		g.AddEdge(0, v)
		next := v + 1
		if next == n {
			next = 1
		}
		g.AddEdge(v, next)
	}
	return g
}
