package graph

// CSR is a compressed-sparse-row view of a graph's adjacency: the neighbour
// lists of all nodes concatenated into one flat Targets array, delimited by
// Offsets. It is the cache-friendly layout used by the hot paths (the turbo
// classifier and the simulation engines): iterating a neighbourhood touches
// one contiguous memory range instead of chasing a per-node slice header,
// and the whole structure is two allocations regardless of graph size.
//
// A CSR is a snapshot: it does not observe later mutations of the graph it
// was built from. Neighbour lists retain the sorted order of the source
// graph. Node indices are stored as int32 (the repository never approaches
// 2^31 nodes), halving the memory traffic of the int-based adjacency.
type CSR struct {
	// Offsets has length N()+1; the neighbours of node v are
	// Targets[Offsets[v]:Offsets[v+1]].
	Offsets []int32
	// Targets holds the concatenated sorted neighbour lists (length 2M).
	Targets []int32
}

// CSR builds the compressed-sparse-row view of g.
func (g *Graph) CSR() CSR {
	return g.CSRInto(CSR{})
}

// CSRInto is CSR with caller-provided backing storage: the view is built
// into scratch's slices (grown as needed) so that repeated conversions —
// one per configuration in a batch classification — allocate nothing once
// the slices have reached steady-state capacity.
func (g *Graph) CSRInto(scratch CSR) CSR {
	offsets := scratch.Offsets
	if cap(offsets) < g.n+1 {
		offsets = make([]int32, g.n+1)
	} else {
		offsets = offsets[:g.n+1]
	}
	targets := scratch.Targets[:0]
	for v := 0; v < g.n; v++ {
		offsets[v] = int32(len(targets))
		for _, w := range g.adj[v] {
			targets = append(targets, int32(w))
		}
	}
	offsets[g.n] = int32(len(targets))
	return CSR{Offsets: offsets, Targets: targets}
}

// N returns the number of nodes.
func (c CSR) N() int { return len(c.Offsets) - 1 }

// M returns the number of edges.
func (c CSR) M() int { return len(c.Targets) / 2 }

// Neighbors returns the sorted neighbour list of v as a sub-slice of the
// flat Targets array. The caller must not modify it.
func (c CSR) Neighbors(v int) []int32 {
	return c.Targets[c.Offsets[v]:c.Offsets[v+1]]
}

// Degree returns the degree of node v.
func (c CSR) Degree(v int) int {
	return int(c.Offsets[v+1] - c.Offsets[v])
}

// MaxDegree returns the maximum degree of the graph (0 when there are no
// nodes or no edges).
func (c CSR) MaxDegree() int {
	max := 0
	for v := 0; v < c.N(); v++ {
		if d := c.Degree(v); d > max {
			max = d
		}
	}
	return max
}
