package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// Additional structural property tests for the graph substrate.

func TestPropertyHandshakeLemma(t *testing.T) {
	// The sum of degrees equals twice the number of edges.
	f := func(seed int64, sz uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(sz%40) + 1
		g := RandomConnectedGNP(n, 0.25, rng)
		sum := 0
		for v := 0; v < g.N(); v++ {
			sum += g.Degree(v)
		}
		hist := g.DegreeHistogram()
		histSum := 0
		count := 0
		for d, c := range hist {
			histSum += d * c
			count += c
		}
		return sum == 2*g.M() && histSum == sum && count == g.N()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatalf("handshake lemma violated: %v", err)
	}
}

func TestPropertyRadiusDiameterRelation(t *testing.T) {
	// For connected graphs: radius <= diameter <= 2 * radius.
	f := func(seed int64, sz uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(sz%25) + 1
		g := RandomConnectedGNP(n, 0.2, rng)
		r := g.Radius()
		d := g.Diameter()
		return r >= 0 && d >= 0 && r <= d && d <= 2*r || (n == 1 && r == 0 && d == 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatalf("radius/diameter relation violated: %v", err)
	}
}

func TestPropertyEccentricityBounds(t *testing.T) {
	// Every eccentricity lies between the radius and the diameter, and the
	// diameter is at most n-1.
	f := func(seed int64, sz uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(sz%20) + 2
		g := RandomConnectedGNP(n, 0.3, rng)
		r, d := g.Radius(), g.Diameter()
		if d > n-1 {
			return false
		}
		for v := 0; v < n; v++ {
			e := g.Eccentricity(v)
			if e < r || e > d {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatalf("eccentricity bounds violated: %v", err)
	}
}

func TestPropertyBFSTreeDistances(t *testing.T) {
	// The BFS tree parent pointers reproduce the BFS distances: every
	// non-root node is exactly one hop further than its parent, and the
	// parent edge exists.
	f := func(seed int64, sz uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(sz%25) + 1
		g := RandomConnectedGNP(n, 0.2, rng)
		src := rng.Intn(n)
		parent, dist := g.BFSTree(src)
		ref := g.BFS(src)
		for v := 0; v < n; v++ {
			if dist[v] != ref[v] {
				return false
			}
			if v == src {
				if parent[v] != src {
					return false
				}
				continue
			}
			if parent[v] < 0 || !g.HasEdge(parent[v], v) || dist[v] != dist[parent[v]]+1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatalf("BFS tree property violated: %v", err)
	}
}

func TestPropertyEdgesRoundTrip(t *testing.T) {
	// Rebuilding a graph from its edge list yields an equal graph.
	f := func(seed int64, sz uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(sz%30) + 1
		g := RandomGNP(n, 0.3, rng)
		h := New(n)
		for _, e := range g.Edges() {
			h.AddEdge(e[0], e[1])
		}
		return g.Equal(h)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatalf("edge list round trip violated: %v", err)
	}
}

func TestPropertyComponentsPartitionNodes(t *testing.T) {
	// The connected components partition the node set, and every edge stays
	// within a single component.
	f := func(seed int64, sz uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(sz%30) + 1
		g := RandomGNP(n, 0.1, rng)
		comps := g.Components()
		seen := make(map[int]int)
		for ci, comp := range comps {
			for _, v := range comp {
				if _, dup := seen[v]; dup {
					return false
				}
				seen[v] = ci
			}
		}
		if len(seen) != n {
			return false
		}
		for _, e := range g.Edges() {
			if seen[e[0]] != seen[e[1]] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatalf("components property violated: %v", err)
	}
}
