// Package graph provides the undirected simple-graph substrate used to model
// the topology of anonymous radio networks.
//
// Graphs are node-indexed: nodes are the integers 0..N-1 and edges are
// unordered pairs of distinct node indices. The package provides
// construction, adjacency queries, structural properties (degree, maximum
// degree, connectivity, distances, diameter), traversals, standard
// generators (paths, cycles, stars, grids, trees, random graphs) and a
// textual codec.
//
// All operations are deterministic: neighbour lists are kept sorted so that
// iteration order never depends on insertion order. Randomized generators
// take an explicit *rand.Rand.
package graph

import (
	"fmt"
	"sort"
)

// Graph is a simple undirected graph over nodes 0..N-1.
//
// The zero value is an empty graph with no nodes. Use New or one of the
// generators to create a graph with nodes.
type Graph struct {
	n   int
	adj [][]int // adj[v] is the sorted list of neighbours of v
	m   int     // number of edges
}

// New returns an edgeless graph with n nodes. It panics if n is negative.
func New(n int) *Graph {
	if n < 0 {
		panic(fmt.Sprintf("graph: negative node count %d", n))
	}
	return &Graph{n: n, adj: make([][]int, n)}
}

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	c := New(g.n)
	c.m = g.m
	for v := range g.adj {
		if len(g.adj[v]) > 0 {
			c.adj[v] = append([]int(nil), g.adj[v]...)
		}
	}
	return c
}

// N returns the number of nodes.
func (g *Graph) N() int { return g.n }

// M returns the number of edges.
func (g *Graph) M() int { return g.m }

// check panics if v is not a valid node index.
func (g *Graph) check(v int) {
	if v < 0 || v >= g.n {
		panic(fmt.Sprintf("graph: node %d out of range [0,%d)", v, g.n))
	}
}

// HasEdge reports whether the edge {u,v} is present.
func (g *Graph) HasEdge(u, v int) bool {
	g.check(u)
	g.check(v)
	if u == v {
		return false
	}
	nb := g.adj[u]
	i := sort.SearchInts(nb, v)
	return i < len(nb) && nb[i] == v
}

// AddEdge inserts the undirected edge {u,v}. Self-loops are rejected with a
// panic; adding an existing edge is a no-op.
func (g *Graph) AddEdge(u, v int) {
	g.check(u)
	g.check(v)
	if u == v {
		panic(fmt.Sprintf("graph: self-loop at node %d", u))
	}
	if g.HasEdge(u, v) {
		return
	}
	g.insert(u, v)
	g.insert(v, u)
	g.m++
}

func (g *Graph) insert(u, v int) {
	nb := g.adj[u]
	i := sort.SearchInts(nb, v)
	nb = append(nb, 0)
	copy(nb[i+1:], nb[i:])
	nb[i] = v
	g.adj[u] = nb
}

// RemoveEdge deletes the undirected edge {u,v} if present and reports whether
// an edge was removed.
func (g *Graph) RemoveEdge(u, v int) bool {
	g.check(u)
	g.check(v)
	if !g.HasEdge(u, v) {
		return false
	}
	g.erase(u, v)
	g.erase(v, u)
	g.m--
	return true
}

func (g *Graph) erase(u, v int) {
	nb := g.adj[u]
	i := sort.SearchInts(nb, v)
	g.adj[u] = append(nb[:i], nb[i+1:]...)
}

// Neighbors returns the sorted neighbour list of v. The returned slice must
// not be modified by the caller.
func (g *Graph) Neighbors(v int) []int {
	g.check(v)
	return g.adj[v]
}

// Degree returns the degree of node v.
func (g *Graph) Degree(v int) int {
	g.check(v)
	return len(g.adj[v])
}

// MaxDegree returns the maximum degree Δ of the graph (0 for graphs with no
// nodes or no edges).
func (g *Graph) MaxDegree() int {
	max := 0
	for v := 0; v < g.n; v++ {
		if d := len(g.adj[v]); d > max {
			max = d
		}
	}
	return max
}

// MinDegree returns the minimum degree of the graph, or 0 if the graph has no
// nodes.
func (g *Graph) MinDegree() int {
	if g.n == 0 {
		return 0
	}
	min := len(g.adj[0])
	for v := 1; v < g.n; v++ {
		if d := len(g.adj[v]); d < min {
			min = d
		}
	}
	return min
}

// Edges returns all edges as pairs [2]int{u,v} with u < v, in lexicographic
// order.
func (g *Graph) Edges() [][2]int {
	edges := make([][2]int, 0, g.m)
	for u := 0; u < g.n; u++ {
		for _, v := range g.adj[u] {
			if u < v {
				edges = append(edges, [2]int{u, v})
			}
		}
	}
	return edges
}

// Equal reports whether g and h have the same node count and the same edge
// set (as labeled graphs; this is not isomorphism).
func (g *Graph) Equal(h *Graph) bool {
	if g.n != h.n || g.m != h.m {
		return false
	}
	for v := 0; v < g.n; v++ {
		a, b := g.adj[v], h.adj[v]
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
	}
	return true
}

// String returns a compact human-readable description of g.
func (g *Graph) String() string {
	return fmt.Sprintf("graph{n=%d m=%d Δ=%d}", g.n, g.m, g.MaxDegree())
}

// Validate checks internal invariants (sorted adjacency, symmetry, no
// self-loops, consistent edge count) and returns an error describing the
// first violation found, or nil.
func (g *Graph) Validate() error {
	if g.n < 0 {
		return fmt.Errorf("graph: negative node count %d", g.n)
	}
	if len(g.adj) != g.n {
		return fmt.Errorf("graph: adjacency length %d != n %d", len(g.adj), g.n)
	}
	count := 0
	for u := 0; u < g.n; u++ {
		nb := g.adj[u]
		for i, v := range nb {
			if v < 0 || v >= g.n {
				return fmt.Errorf("graph: node %d has out-of-range neighbour %d", u, v)
			}
			if v == u {
				return fmt.Errorf("graph: self-loop at node %d", u)
			}
			if i > 0 && nb[i-1] >= v {
				return fmt.Errorf("graph: adjacency of node %d not strictly sorted", u)
			}
			if !g.HasEdge(v, u) {
				return fmt.Errorf("graph: edge %d-%d not symmetric", u, v)
			}
		}
		count += len(nb)
	}
	if count != 2*g.m {
		return fmt.Errorf("graph: edge count %d inconsistent with adjacency degree sum %d", g.m, count)
	}
	return nil
}
