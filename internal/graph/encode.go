package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// This file contains the textual codec for graphs. The format is a simple
// line-oriented edge list:
//
//	# comment
//	nodes <n>
//	edge <u> <v>
//	...
//
// and a DOT export for visualization with external tools.

// Encode writes g in the edge-list format to w.
func (g *Graph) Encode(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "nodes %d\n", g.n); err != nil {
		return err
	}
	for _, e := range g.Edges() {
		if _, err := fmt.Fprintf(bw, "edge %d %d\n", e[0], e[1]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Marshal returns the edge-list encoding of g as a string.
func (g *Graph) Marshal() string {
	var sb strings.Builder
	// Encode on a strings.Builder never fails.
	_ = g.Encode(&sb)
	return sb.String()
}

// Read parses a graph in the edge-list format from r.
func Read(r io.Reader) (*Graph, error) {
	scanner := bufio.NewScanner(r)
	scanner.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var g *Graph
	line := 0
	for scanner.Scan() {
		line++
		text := strings.TrimSpace(scanner.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		switch fields[0] {
		case "nodes":
			if g != nil {
				return nil, fmt.Errorf("graph: line %d: duplicate nodes declaration", line)
			}
			if len(fields) != 2 {
				return nil, fmt.Errorf("graph: line %d: nodes takes exactly one argument", line)
			}
			n, err := strconv.Atoi(fields[1])
			if err != nil || n < 0 {
				return nil, fmt.Errorf("graph: line %d: invalid node count %q", line, fields[1])
			}
			g = New(n)
		case "edge":
			if g == nil {
				return nil, fmt.Errorf("graph: line %d: edge before nodes declaration", line)
			}
			if len(fields) != 3 {
				return nil, fmt.Errorf("graph: line %d: edge takes exactly two arguments", line)
			}
			u, err1 := strconv.Atoi(fields[1])
			v, err2 := strconv.Atoi(fields[2])
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("graph: line %d: invalid edge endpoints %q %q", line, fields[1], fields[2])
			}
			if u < 0 || u >= g.n || v < 0 || v >= g.n || u == v {
				return nil, fmt.Errorf("graph: line %d: edge %d-%d out of range or self-loop", line, u, v)
			}
			g.AddEdge(u, v)
		default:
			return nil, fmt.Errorf("graph: line %d: unknown directive %q", line, fields[0])
		}
	}
	if err := scanner.Err(); err != nil {
		return nil, err
	}
	if g == nil {
		return nil, fmt.Errorf("graph: missing nodes declaration")
	}
	return g, nil
}

// Unmarshal parses a graph from its edge-list string encoding.
func Unmarshal(s string) (*Graph, error) {
	return Read(strings.NewReader(s))
}

// DOT returns a Graphviz DOT representation of g with the given graph name.
func (g *Graph) DOT(name string) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "graph %s {\n", sanitizeDOTName(name))
	for v := 0; v < g.n; v++ {
		fmt.Fprintf(&sb, "  n%d;\n", v)
	}
	for _, e := range g.Edges() {
		fmt.Fprintf(&sb, "  n%d -- n%d;\n", e[0], e[1])
	}
	sb.WriteString("}\n")
	return sb.String()
}

func sanitizeDOTName(name string) string {
	if name == "" {
		return "G"
	}
	var sb strings.Builder
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_':
			sb.WriteRune(r)
		case r >= '0' && r <= '9' && i > 0:
			sb.WriteRune(r)
		default:
			sb.WriteByte('_')
		}
	}
	return sb.String()
}
