package graph

import (
	"math/rand"
	"testing"
)

func TestCSRMatchesAdjacency(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	graphs := []*Graph{
		New(0),
		New(1),
		Path(7),
		Cycle(9),
		Star(6),
		Complete(8),
		RandomConnectedGNP(33, 0.2, rng),
	}
	for _, g := range graphs {
		csr := g.CSR()
		if csr.N() != g.N() {
			t.Fatalf("%s: CSR.N() = %d, want %d", g, csr.N(), g.N())
		}
		if csr.M() != g.M() {
			t.Fatalf("%s: CSR.M() = %d, want %d", g, csr.M(), g.M())
		}
		if csr.MaxDegree() != g.MaxDegree() {
			t.Fatalf("%s: CSR.MaxDegree() = %d, want %d", g, csr.MaxDegree(), g.MaxDegree())
		}
		for v := 0; v < g.N(); v++ {
			want := g.Neighbors(v)
			got := csr.Neighbors(v)
			if len(got) != len(want) || csr.Degree(v) != g.Degree(v) {
				t.Fatalf("%s: node %d neighbour count mismatch: got %v want %v", g, v, got, want)
			}
			for i := range want {
				if int(got[i]) != want[i] {
					t.Fatalf("%s: node %d neighbour %d: got %d want %d", g, v, i, got[i], want[i])
				}
			}
		}
	}
}

func TestCSRIsSnapshot(t *testing.T) {
	g := Path(4)
	csr := g.CSR()
	g.AddEdge(0, 3)
	if csr.Degree(0) != 1 {
		t.Fatalf("CSR observed a mutation of the source graph: degree(0) = %d", csr.Degree(0))
	}
}
