package graph

// This file contains traversals and distance-based structural properties:
// breadth-first search, connectivity, connected components, shortest-path
// distances, eccentricity, radius and diameter. All of these are needed both
// by the configuration validators (the paper requires connected graphs) and
// by the workload generators in the experiment harness.

// BFS performs a breadth-first search from source and returns the distance
// (in hops) from source to every node. Unreachable nodes get distance -1.
func (g *Graph) BFS(source int) []int {
	g.check(source)
	dist := make([]int, g.n)
	for i := range dist {
		dist[i] = -1
	}
	dist[source] = 0
	queue := make([]int, 0, g.n)
	queue = append(queue, source)
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.adj[u] {
			if dist[v] < 0 {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

// BFSTree returns, for a BFS from source, the parent of every node in the BFS
// tree (parent[source] = source; unreachable nodes get parent -1) together
// with the distance vector.
func (g *Graph) BFSTree(source int) (parent, dist []int) {
	g.check(source)
	parent = make([]int, g.n)
	dist = make([]int, g.n)
	for i := range parent {
		parent[i] = -1
		dist[i] = -1
	}
	parent[source] = source
	dist[source] = 0
	queue := []int{source}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.adj[u] {
			if dist[v] < 0 {
				dist[v] = dist[u] + 1
				parent[v] = u
				queue = append(queue, v)
			}
		}
	}
	return parent, dist
}

// Connected reports whether the graph is connected. Graphs with zero nodes
// are considered connected; a one-node graph is connected.
func (g *Graph) Connected() bool {
	if g.n <= 1 {
		return true
	}
	dist := g.BFS(0)
	for _, d := range dist {
		if d < 0 {
			return false
		}
	}
	return true
}

// Components returns the connected components of g as a list of sorted node
// slices, ordered by their smallest node.
func (g *Graph) Components() [][]int {
	seen := make([]bool, g.n)
	var comps [][]int
	for s := 0; s < g.n; s++ {
		if seen[s] {
			continue
		}
		var comp []int
		queue := []int{s}
		seen[s] = true
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			comp = append(comp, u)
			for _, v := range g.adj[u] {
				if !seen[v] {
					seen[v] = true
					queue = append(queue, v)
				}
			}
		}
		// BFS discovery order from the smallest node is not necessarily
		// sorted; normalize.
		sortInts(comp)
		comps = append(comps, comp)
	}
	return comps
}

func sortInts(a []int) {
	// Insertion sort: component slices are typically small and this avoids
	// importing sort in two files for a single call site. For large slices
	// the cost is still dominated by BFS.
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j-1] > a[j]; j-- {
			a[j-1], a[j] = a[j], a[j-1]
		}
	}
}

// Eccentricity returns the eccentricity of node v: the maximum hop distance
// from v to any reachable node. It returns -1 if some node is unreachable
// from v.
func (g *Graph) Eccentricity(v int) int {
	dist := g.BFS(v)
	ecc := 0
	for _, d := range dist {
		if d < 0 {
			return -1
		}
		if d > ecc {
			ecc = d
		}
	}
	return ecc
}

// Diameter returns the diameter of a connected graph (maximum eccentricity),
// or -1 if the graph is disconnected or empty.
func (g *Graph) Diameter() int {
	if g.n == 0 {
		return -1
	}
	diam := 0
	for v := 0; v < g.n; v++ {
		e := g.Eccentricity(v)
		if e < 0 {
			return -1
		}
		if e > diam {
			diam = e
		}
	}
	return diam
}

// Radius returns the radius of a connected graph (minimum eccentricity), or
// -1 if the graph is disconnected or empty.
func (g *Graph) Radius() int {
	if g.n == 0 {
		return -1
	}
	rad := -1
	for v := 0; v < g.n; v++ {
		e := g.Eccentricity(v)
		if e < 0 {
			return -1
		}
		if rad < 0 || e < rad {
			rad = e
		}
	}
	return rad
}

// IsTree reports whether g is a tree: connected with exactly n-1 edges.
func (g *Graph) IsTree() bool {
	if g.n == 0 {
		return false
	}
	return g.m == g.n-1 && g.Connected()
}

// DegreeHistogram returns a map from degree value to the number of nodes with
// that degree.
func (g *Graph) DegreeHistogram() map[int]int {
	h := make(map[int]int)
	for v := 0; v < g.n; v++ {
		h[len(g.adj[v])]++
	}
	return h
}
