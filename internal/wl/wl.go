// Package wl implements classic colour refinement (1-dimensional
// Weisfeiler–Leman) on tagged graphs. It is not part of the paper's
// algorithms; the experiment harness uses it as a structural point of
// comparison for the radio-model refinement performed by the Classifier:
// colour refinement sees the exact multiset of neighbour colours, whereas the
// radio model collapses simultaneous transmissions into a single noise
// symbol and cannot hear neighbours that transmit together with the
// listener. Experiment E10 measures how often the two notions of
// distinguishability coincide.
package wl

import (
	"fmt"
	"sort"
	"strings"

	"anonradio/internal/config"
)

// Result is the outcome of colour refinement on a configuration.
type Result struct {
	// Colors[v] is the stable colour class of node v (0-based, numbered by
	// first appearance in node order).
	Colors []int
	// NumColors is the number of stable colour classes.
	NumColors int
	// Rounds is the number of refinement rounds until stabilization.
	Rounds int
	// Partitions[j][v] is the colour of node v after round j (round 0 is the
	// initial colouring by wake-up tag).
	Partitions [][]int
}

// HasDiscreteNode reports whether some stable colour class contains exactly
// one node (the analogue of the Classifier's singleton-class condition).
func (r *Result) HasDiscreteNode() bool {
	counts := make([]int, r.NumColors)
	for _, c := range r.Colors {
		counts[c]++
	}
	for _, c := range counts {
		if c == 1 {
			return true
		}
	}
	return false
}

// DiscreteNodes returns the sorted list of nodes that are alone in their
// stable colour class.
func (r *Result) DiscreteNodes() []int {
	counts := make([]int, r.NumColors)
	for _, c := range r.Colors {
		counts[c]++
	}
	var out []int
	for v, c := range r.Colors {
		if counts[c] == 1 {
			out = append(out, v)
		}
	}
	return out
}

// SameColor reports whether nodes v and w have the same stable colour.
func (r *Result) SameColor(v, w int) bool { return r.Colors[v] == r.Colors[w] }

// Refine runs colour refinement on cfg. The initial colour of a node is its
// (normalized) wake-up tag; in each round a node's new colour is the pair
// (old colour, sorted multiset of neighbours' old colours). Refinement stops
// when the number of colour classes no longer grows, which happens after at
// most n rounds.
func Refine(cfg *config.Config) (*Result, error) {
	if cfg == nil {
		return nil, fmt.Errorf("wl: nil configuration")
	}
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("wl: invalid configuration: %w", err)
	}
	cfg = cfg.Normalized()
	n := cfg.N()
	g := cfg.Graph()

	// Initial colouring by tag, renumbered to 0..k-1 by first appearance.
	colors := canonicalize(cfg.Tags())
	res := &Result{}
	res.Partitions = append(res.Partitions, append([]int(nil), colors...))

	numColors := countColors(colors)
	for round := 1; round <= n; round++ {
		keys := make([]string, n)
		for v := 0; v < n; v++ {
			nb := make([]int, 0, g.Degree(v))
			for _, w := range g.Neighbors(v) {
				nb = append(nb, colors[w])
			}
			sort.Ints(nb)
			var sb strings.Builder
			fmt.Fprintf(&sb, "%d|", colors[v])
			for _, c := range nb {
				fmt.Fprintf(&sb, "%d,", c)
			}
			keys[v] = sb.String()
		}
		next := canonicalizeStrings(keys)
		nextCount := countColors(next)
		res.Rounds = round
		res.Partitions = append(res.Partitions, append([]int(nil), next...))
		colors = next
		if nextCount == numColors {
			break
		}
		numColors = nextCount
	}
	res.Colors = colors
	res.NumColors = countColors(colors)
	return res, nil
}

// canonicalize renumbers arbitrary integer labels to 0..k-1 in order of first
// appearance.
func canonicalize(labels []int) []int {
	index := make(map[int]int)
	out := make([]int, len(labels))
	for i, l := range labels {
		c, ok := index[l]
		if !ok {
			c = len(index)
			index[l] = c
		}
		out[i] = c
	}
	return out
}

// canonicalizeStrings renumbers string keys to 0..k-1 in order of first
// appearance.
func canonicalizeStrings(keys []string) []int {
	index := make(map[string]int)
	out := make([]int, len(keys))
	for i, k := range keys {
		c, ok := index[k]
		if !ok {
			c = len(index)
			index[k] = c
		}
		out[i] = c
	}
	return out
}

func countColors(colors []int) int {
	max := -1
	for _, c := range colors {
		if c > max {
			max = c
		}
	}
	return max + 1
}

// Compare describes the relationship between the colour-refinement partition
// and another partition of the same node set (typically the Classifier's
// final partition).
type Compare struct {
	// Equal is true when the two partitions induce the same equivalence
	// relation.
	Equal bool
	// WLRefines is true when every colour class is contained in a class of
	// the other partition (colour refinement distinguishes at least as much).
	WLRefines bool
	// OtherRefines is true when every class of the other partition is
	// contained in a colour class.
	OtherRefines bool
}

// CompareWith relates the stable colouring to an arbitrary partition given as
// a class index per node.
func (r *Result) CompareWith(other []int) (Compare, error) {
	if len(other) != len(r.Colors) {
		return Compare{}, fmt.Errorf("wl: partition size %d does not match %d nodes", len(other), len(r.Colors))
	}
	wlRefines := true
	otherRefines := true
	n := len(other)
	for v := 0; v < n; v++ {
		for w := v + 1; w < n; w++ {
			sameWL := r.Colors[v] == r.Colors[w]
			sameOther := other[v] == other[w]
			if sameWL && !sameOther {
				wlRefines = false
			}
			if sameOther && !sameWL {
				otherRefines = false
			}
		}
	}
	return Compare{
		Equal:        wlRefines && otherRefines,
		WLRefines:    wlRefines,
		OtherRefines: otherRefines,
	}, nil
}
