package wl

import (
	"math/rand"
	"testing"
	"testing/quick"

	"anonradio/internal/config"
	"anonradio/internal/graph"
)

func refine(t *testing.T, cfg *config.Config) *Result {
	t.Helper()
	r, err := Refine(cfg)
	if err != nil {
		t.Fatalf("Refine(%s): %v", cfg, err)
	}
	return r
}

func TestRefineInputValidation(t *testing.T) {
	if _, err := Refine(nil); err == nil {
		t.Fatalf("nil configuration should error")
	}
	bad := config.NewUnchecked(graph.New(2), []int{0, 0})
	if _, err := Refine(bad); err == nil {
		t.Fatalf("invalid configuration should error")
	}
}

func TestRefineUniformCycle(t *testing.T) {
	// A cycle with uniform tags is vertex-transitive: a single stable colour.
	r := refine(t, config.UniformTags(graph.Cycle(6)))
	if r.NumColors != 1 || r.HasDiscreteNode() {
		t.Fatalf("uniform cycle should have one colour class: %+v", r)
	}
	if len(r.DiscreteNodes()) != 0 {
		t.Fatalf("uniform cycle should have no discrete node")
	}
}

func TestRefineUniformStar(t *testing.T) {
	// A star with uniform tags: the centre is distinguished by degree.
	r := refine(t, config.UniformTags(graph.Star(5)))
	if r.NumColors != 2 {
		t.Fatalf("star should refine into centre and leaves: %+v", r)
	}
	if !r.HasDiscreteNode() {
		t.Fatalf("the star centre should be a discrete node")
	}
	d := r.DiscreteNodes()
	if len(d) != 1 || d[0] != 0 {
		t.Fatalf("discrete nodes = %v, want [0]", d)
	}
	if r.SameColor(1, 4) != true || r.SameColor(0, 1) {
		t.Fatalf("colour relation wrong")
	}
}

func TestRefineTagsSeedColours(t *testing.T) {
	// On a path with distinct tags every node becomes discrete.
	r := refine(t, config.StaggeredPath(5, 1))
	if r.NumColors != 5 {
		t.Fatalf("distinct tags should make every node discrete: %+v", r)
	}
	// On the symmetric family S_m the two endpoints stay together, as do the
	// two middle nodes.
	r = refine(t, config.SymmetricFamilyS(2))
	if r.NumColors != 2 || r.HasDiscreteNode() {
		t.Fatalf("S_2 should refine into two size-2 classes: %+v", r)
	}
	if !r.SameColor(0, 3) || !r.SameColor(1, 2) || r.SameColor(0, 1) {
		t.Fatalf("S_2 colour classes wrong: %v", r.Colors)
	}
}

func TestRefinePartitionHistory(t *testing.T) {
	r := refine(t, config.LineFamilyG(2))
	if len(r.Partitions) != r.Rounds+1 {
		t.Fatalf("partition history length %d for %d rounds", len(r.Partitions), r.Rounds)
	}
	// Refinement is monotone: classes never merge between rounds.
	for j := 1; j < len(r.Partitions); j++ {
		prev, cur := r.Partitions[j-1], r.Partitions[j]
		for v := range cur {
			for w := range cur {
				if prev[v] != prev[w] && cur[v] == cur[w] {
					t.Fatalf("colour classes merged at round %d (%d,%d)", j, v, w)
				}
			}
		}
	}
}

func TestCompareWith(t *testing.T) {
	r := refine(t, config.UniformTags(graph.Star(4)))
	// Identical partition.
	cmp, err := r.CompareWith(r.Colors)
	if err != nil || !cmp.Equal || !cmp.WLRefines || !cmp.OtherRefines {
		t.Fatalf("self comparison wrong: %+v %v", cmp, err)
	}
	// A coarser partition (everything together): WL refines it.
	coarse := make([]int, 4)
	cmp, err = r.CompareWith(coarse)
	if err != nil || cmp.Equal || !cmp.WLRefines || cmp.OtherRefines {
		t.Fatalf("coarse comparison wrong: %+v %v", cmp, err)
	}
	// A finer partition (all distinct): it refines WL.
	fine := []int{0, 1, 2, 3}
	cmp, err = r.CompareWith(fine)
	if err != nil || cmp.Equal || cmp.WLRefines || !cmp.OtherRefines {
		t.Fatalf("fine comparison wrong: %+v %v", cmp, err)
	}
	// Size mismatch.
	if _, err := r.CompareWith([]int{0}); err == nil {
		t.Fatalf("size mismatch should error")
	}
}

func TestPropertyRefinementStableAndCanonical(t *testing.T) {
	f := func(seed int64, sz, span uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(sz%14) + 1
		cfg := config.Random(n, 0.3, config.UniformRandomTags{Span: int(span % 4)}, rng)
		r, err := Refine(cfg)
		if err != nil {
			return false
		}
		// Colours are canonical: numbered 0..k-1 with every value used, and
		// the stable partition really is stable (one more round of manual
		// refinement cannot split it, checked via the recorded history: the
		// last two partitions have the same class count).
		seen := make(map[int]bool)
		for _, c := range r.Colors {
			if c < 0 || c >= r.NumColors {
				return false
			}
			seen[c] = true
		}
		if len(seen) != r.NumColors {
			return false
		}
		if len(r.Partitions) >= 2 {
			last := r.Partitions[len(r.Partitions)-1]
			prev := r.Partitions[len(r.Partitions)-2]
			if countColors(last) < countColors(prev) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatalf("refinement property failed: %v", err)
	}
}

func TestPropertyRelabelingInvariance(t *testing.T) {
	// The number of stable colours and the discreteness verdict are invariant
	// under node relabeling.
	f := func(seed int64, sz uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(sz%12) + 2
		base := config.Random(n, 0.3, config.UniformRandomTags{Span: 3}, rng)
		perm := rng.Perm(n)
		pg := graph.New(n)
		for _, e := range base.Graph().Edges() {
			pg.AddEdge(perm[e[0]], perm[e[1]])
		}
		ptags := make([]int, n)
		for v, tag := range base.Tags() {
			ptags[perm[v]] = tag
		}
		permuted := config.MustNew(pg, ptags)
		a, err1 := Refine(base)
		b, err2 := Refine(permuted)
		if err1 != nil || err2 != nil {
			return false
		}
		return a.NumColors == b.NumColors && a.HasDiscreteNode() == b.HasDiscreteNode()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatalf("relabeling invariance failed: %v", err)
	}
}
