package symmetry

import (
	"math/rand"
	"testing"
	"testing/quick"

	"anonradio/internal/config"
	"anonradio/internal/core"
	"anonradio/internal/graph"
)

func orbits(t *testing.T, cfg *config.Config) *Result {
	t.Helper()
	r, err := Orbits(cfg, 0)
	if err != nil {
		t.Fatalf("Orbits(%s): %v", cfg, err)
	}
	return r
}

func TestOrbitsValidation(t *testing.T) {
	if _, err := Orbits(nil, 0); err == nil {
		t.Fatalf("nil configuration should error")
	}
	bad := config.NewUnchecked(graph.New(2), []int{0, 0})
	if _, err := Orbits(bad, 0); err == nil {
		t.Fatalf("invalid configuration should error")
	}
	if _, err := Orbits(config.StaggeredClique(10), 5); err == nil {
		t.Fatalf("node limit should be enforced")
	}
}

func TestOrbitsUniformCycle(t *testing.T) {
	// The cycle with uniform tags is vertex-transitive: one orbit, dihedral
	// group of size 2n.
	r := orbits(t, config.UniformTags(graph.Cycle(5)))
	if len(r.Orbits) != 1 || len(r.Orbits[0]) != 5 {
		t.Fatalf("cycle orbits wrong: %v", r.Orbits)
	}
	if r.GroupSize != 10 {
		t.Fatalf("C5 automorphism group size = %d, want 10", r.GroupSize)
	}
	if r.HasFixedNode() {
		t.Fatalf("vertex-transitive graph has no fixed node")
	}
}

func TestOrbitsUniformStar(t *testing.T) {
	// Star with uniform tags: the centre is fixed, the k leaves form one
	// orbit, group size k!.
	r := orbits(t, config.UniformTags(graph.Star(5)))
	if len(r.Orbits) != 2 {
		t.Fatalf("star orbits wrong: %v", r.Orbits)
	}
	if !r.HasFixedNode() || len(r.FixedNodes) != 1 || r.FixedNodes[0] != 0 {
		t.Fatalf("star centre should be the unique fixed node: %v", r.FixedNodes)
	}
	if r.GroupSize != 24 {
		t.Fatalf("star automorphism group size = %d, want 4! = 24", r.GroupSize)
	}
	if !r.SameOrbit(1, 4) || r.SameOrbit(0, 1) {
		t.Fatalf("orbit relation wrong")
	}
}

func TestOrbitsTagsBreakSymmetry(t *testing.T) {
	// Distinct tags destroy all non-trivial automorphisms.
	r := orbits(t, config.StaggeredClique(5))
	if r.GroupSize != 1 || len(r.Orbits) != 5 {
		t.Fatalf("distinct tags should leave only the identity: size=%d orbits=%v", r.GroupSize, r.Orbits)
	}
	// The same clique with uniform tags is fully symmetric.
	r = orbits(t, config.UniformTags(graph.Complete(5)))
	if r.GroupSize != 120 || len(r.Orbits) != 1 {
		t.Fatalf("K5 should have group size 120 and one orbit: size=%d", r.GroupSize)
	}
}

func TestOrbitsPaperFamilies(t *testing.T) {
	// H_m has four distinct tags/positions: only the identity automorphism.
	r := orbits(t, config.SpanFamilyH(3))
	if r.GroupSize != 1 || len(r.FixedNodes) != 4 {
		t.Fatalf("H_3 should be rigid: %+v", r)
	}
	// S_m has the end-swap reflection: orbits {a,d} and {b,c}.
	r = orbits(t, config.SymmetricFamilyS(3))
	if r.GroupSize != 2 || len(r.Orbits) != 2 || r.HasFixedNode() {
		t.Fatalf("S_3 orbit structure wrong: %+v", r)
	}
	if !r.SameOrbit(0, 3) || !r.SameOrbit(1, 2) {
		t.Fatalf("S_3 orbits wrong: %v", r.Orbits)
	}
	// G_m has the mirror reflection fixing only the central node.
	m := 2
	r = orbits(t, config.LineFamilyG(m))
	if r.GroupSize != 2 {
		t.Fatalf("G_2 should have exactly the mirror symmetry: %d", r.GroupSize)
	}
	if len(r.FixedNodes) != 1 || r.FixedNodes[0] != 2*m {
		t.Fatalf("G_2 fixed nodes = %v, want the centre %d", r.FixedNodes, 2*m)
	}
}

func TestCertifiesInfeasible(t *testing.T) {
	cases := []struct {
		cfg  *config.Config
		want bool
	}{
		{config.SymmetricPair(), true},
		{config.SymmetricFamilyS(2), true},
		{config.UniformTags(graph.Cycle(6)), true},
		{config.SpanFamilyH(2), false},
		{config.LineFamilyG(2), false},
		{config.SingleNode(), false},
	}
	for _, tc := range cases {
		got, err := CertifiesInfeasible(tc.cfg, 0)
		if err != nil {
			t.Fatalf("%s: %v", tc.cfg, err)
		}
		if got != tc.want {
			t.Fatalf("%s: certificate = %v, want %v", tc.cfg, got, tc.want)
		}
	}
	if _, err := CertifiesInfeasible(nil, 0); err == nil {
		t.Fatalf("nil configuration should error")
	}
}

func TestPropertyCertificateImpliesClassifierInfeasible(t *testing.T) {
	// Soundness of the certificate: whenever every orbit has size >= 2, the
	// Classifier must also declare the configuration infeasible
	// (equivalently, feasible configurations always have a fixed node).
	f := func(seed int64, sz, span uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(sz%10) + 2
		cfg := config.Random(n, 0.35, config.UniformRandomTags{Span: int(span % 3)}, rng)
		cert, err1 := CertifiesInfeasible(cfg, 0)
		rep, err2 := core.Classify(cfg)
		if err1 != nil || err2 != nil {
			return false
		}
		if cert && rep.Feasible() {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatalf("symmetry certificate unsound: %v", err)
	}
}

func TestPropertyOrbitsRefineClassifierPartition(t *testing.T) {
	// Nodes in a common orbit are indistinguishable by any protocol, so they
	// must end up in the same Classifier class.
	f := func(seed int64, sz uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(sz%10) + 2
		cfg := config.Random(n, 0.3, config.UniformRandomTags{Span: 2}, rng)
		orb, err1 := Orbits(cfg, 0)
		rep, err2 := core.Classify(cfg)
		if err1 != nil || err2 != nil {
			return false
		}
		final := rep.FinalSnapshot()
		for v := 0; v < n; v++ {
			for w := v + 1; w < n; w++ {
				if orb.SameOrbit(v, w) && final.Classes[v] != final.Classes[w] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatalf("orbit/class refinement violated: %v", err)
	}
}
