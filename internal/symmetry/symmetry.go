// Package symmetry computes the tag-preserving automorphisms of a
// configuration and their node orbits. It provides an exact structural
// certificate for one direction of the feasibility question: if every orbit
// of the tag-preserving automorphism group has at least two nodes, then any
// two nodes in the same orbit behave identically under every deterministic
// protocol, no node can ever be distinguished, and the configuration is
// infeasible. (The converse does not hold: a configuration can have trivial
// automorphisms and still be infeasible, because the radio model lets nodes
// observe strictly less than the full structure — experiment E11 quantifies
// the gap.)
//
// The group is computed by a straightforward backtracking search over
// candidate node bijections, pruned by degree, tag and adjacency
// constraints. This is exponential in the worst case but perfectly adequate
// for the configuration sizes used in the experiments; Orbits guards against
// blow-ups with an explicit node budget.
package symmetry

import (
	"fmt"
	"sort"

	"anonradio/internal/config"
)

// Result describes the tag-preserving automorphism structure of a
// configuration.
type Result struct {
	// Orbits lists the node orbits (each sorted), ordered by smallest
	// element.
	Orbits [][]int
	// OrbitOf[v] is the index into Orbits of node v's orbit.
	OrbitOf []int
	// GroupSize is the number of tag-preserving automorphisms found
	// (including the identity).
	GroupSize int
	// FixedNodes lists the nodes fixed by every automorphism (the singleton
	// orbits), sorted.
	FixedNodes []int
}

// HasFixedNode reports whether some node is fixed by every tag-preserving
// automorphism. If not, the configuration is certainly infeasible.
func (r *Result) HasFixedNode() bool { return len(r.FixedNodes) > 0 }

// SameOrbit reports whether nodes v and w lie in a common orbit.
func (r *Result) SameOrbit(v, w int) bool { return r.OrbitOf[v] == r.OrbitOf[w] }

// DefaultNodeLimit bounds the configuration size accepted by Orbits; the
// backtracking search is exponential in the worst case and the experiments
// never need more.
const DefaultNodeLimit = 64

// Orbits computes the orbit partition of the tag-preserving automorphism
// group of cfg. Configurations larger than limit nodes are rejected; pass
// limit <= 0 for DefaultNodeLimit.
func Orbits(cfg *config.Config, limit int) (*Result, error) {
	if cfg == nil {
		return nil, fmt.Errorf("symmetry: nil configuration")
	}
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("symmetry: invalid configuration: %w", err)
	}
	if limit <= 0 {
		limit = DefaultNodeLimit
	}
	n := cfg.N()
	if n > limit {
		return nil, fmt.Errorf("symmetry: configuration has %d nodes, limit is %d", n, limit)
	}
	cfg = cfg.Normalized()
	g := cfg.Graph()

	// Pre-compute the per-node invariants used for pruning: wake-up tag,
	// degree, and the sorted multiset of neighbour (tag, degree) pairs.
	type nodeSig struct {
		tag, degree int
		neigh       string
	}
	sigs := make([]nodeSig, n)
	for v := 0; v < n; v++ {
		pairs := make([][2]int, 0, g.Degree(v))
		for _, w := range g.Neighbors(v) {
			pairs = append(pairs, [2]int{cfg.Tag(w), g.Degree(w)})
		}
		sort.Slice(pairs, func(i, j int) bool {
			if pairs[i][0] != pairs[j][0] {
				return pairs[i][0] < pairs[j][0]
			}
			return pairs[i][1] < pairs[j][1]
		})
		sigs[v] = nodeSig{tag: cfg.Tag(v), degree: g.Degree(v), neigh: fmt.Sprint(pairs)}
	}
	compatible := func(u, v int) bool { return sigs[u] == sigs[v] }

	// Union-find over nodes to accumulate orbits.
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		if parent[x] != x {
			parent[x] = find(parent[x])
		}
		return parent[x]
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}

	// Backtracking over images: perm[v] = image of node v, or -1.
	perm := make([]int, n)
	used := make([]bool, n)
	for i := range perm {
		perm[i] = -1
	}
	groupSize := 0

	// consistent checks whether mapping v -> image respects adjacency with
	// all previously mapped nodes.
	consistent := func(v, image int) bool {
		if !compatible(v, image) {
			return false
		}
		for u := 0; u < v; u++ {
			if perm[u] < 0 {
				continue
			}
			if g.HasEdge(u, v) != g.HasEdge(perm[u], image) {
				return false
			}
		}
		return true
	}

	var search func(v int)
	search = func(v int) {
		if v == n {
			groupSize++
			for u := 0; u < n; u++ {
				union(u, perm[u])
			}
			return
		}
		for image := 0; image < n; image++ {
			if used[image] || !consistent(v, image) {
				continue
			}
			perm[v] = image
			used[image] = true
			search(v + 1)
			perm[v] = -1
			used[image] = false
		}
	}
	search(0)

	// Assemble orbits.
	res := &Result{OrbitOf: make([]int, n), GroupSize: groupSize}
	roots := make(map[int]int)
	for v := 0; v < n; v++ {
		r := find(v)
		idx, ok := roots[r]
		if !ok {
			idx = len(res.Orbits)
			roots[r] = idx
			res.Orbits = append(res.Orbits, nil)
		}
		res.OrbitOf[v] = idx
		res.Orbits[idx] = append(res.Orbits[idx], v)
	}
	for _, orbit := range res.Orbits {
		if len(orbit) == 1 {
			res.FixedNodes = append(res.FixedNodes, orbit[0])
		}
	}
	sort.Ints(res.FixedNodes)
	return res, nil
}

// CertifiesInfeasible reports whether the automorphism structure alone proves
// that cfg is infeasible: every orbit has at least two nodes, so nodes come
// in indistinguishable pairs under any deterministic protocol.
func CertifiesInfeasible(cfg *config.Config, limit int) (bool, error) {
	r, err := Orbits(cfg, limit)
	if err != nil {
		return false, err
	}
	return !r.HasFixedNode(), nil
}
