package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
)

// This file is the read side of the journal: Replay walks the segments in
// sequence order and delivers every intact record, surviving the damage a
// crash can leave behind. The recovery stance is deliberate — a journal
// exists to make restarts a non-event, so replay never refuses to boot over
// a damaged record; it truncates or skips, and reports every such decision
// so the operator (and the tests) can see exactly what was lost.

// Fault is one recovery decision replay had to make.
type Fault struct {
	// Segment is the file name of the affected segment.
	Segment string
	// Offset is the byte offset the fault was detected at.
	Offset int64
	// Reason describes the fault and what replay did about it.
	Reason string
}

func (f Fault) String() string {
	return fmt.Sprintf("%s@%d: %s", f.Segment, f.Offset, f.Reason)
}

// Report summarizes one Replay.
type Report struct {
	// Segments is the number of segment files visited.
	Segments int
	// Records is the number of intact records delivered to the callback.
	Records int
	// SkippedBytes counts bytes of corrupt interior records skipped by
	// resynchronizing on the next verifiable frame.
	SkippedBytes int64
	// TruncatedBytes counts torn or corrupt tail bytes physically truncated
	// off their segment.
	TruncatedBytes int64
	// Faults lists every recovery decision, in segment order.
	Faults []Fault
}

// Clean reports whether the replay saw no damage at all.
func (r *Report) Clean() bool { return len(r.Faults) == 0 }

// Replay delivers every intact record payload in dir's journal, oldest
// segment first, to fn. Damage is tolerated, not fatal:
//
//   - A torn or corrupt tail (the typical kill -9 residue: a frame that
//     runs past the end of its file, or trailing garbage with no further
//     valid frame) is truncated off the segment file, so the next boot
//     starts clean.
//   - A corrupt record mid-log (bit rot, a torn sector that later writes
//     survived) is skipped by scanning forward to the next frame whose
//     magic, length and CRC all verify; the intact records after it are
//     still delivered.
//
// Every decision lands in the report. Replay returns an error only when fn
// itself fails (the error aborts the replay) or a segment cannot be read
// at all.
func Replay(dir string, fn func(payload []byte) error) (*Report, error) {
	report := &Report{}
	paths, _, err := listSegments(dir)
	if err != nil {
		return report, err
	}
	for _, path := range paths {
		if err := replaySegment(path, fn, report); err != nil {
			return report, err
		}
	}
	return report, nil
}

// replaySegment scans one segment file, delivering intact records and
// recording recovery decisions.
func replaySegment(path string, fn func(payload []byte) error, report *Report) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("wal: reading segment: %w", err)
	}
	report.Segments++
	name := filepath.Base(path)
	off := 0
	// A segment header (format version 2+) precedes the records; its
	// absence means a version-1 segment, whose records start at byte 0 in
	// the same framing. A segment from a newer format than this build
	// understands is skipped whole — its record encoding cannot be assumed —
	// and reported, never silently misread.
	if len(data) >= segmentHeaderSize && binary.LittleEndian.Uint32(data) == segmentMagic {
		if v := data[4]; v > SegmentVersion {
			report.Faults = append(report.Faults, Fault{
				Segment: name,
				Reason:  fmt.Sprintf("segment format version %d is newer than the supported %d; segment skipped", v, SegmentVersion),
			})
			return nil
		}
		off = segmentHeaderSize
	}
	for off < len(data) {
		payload, n, ok := parseFrame(data[off:])
		if ok {
			if err := fn(payload); err != nil {
				return err
			}
			report.Records++
			off += n
			continue
		}
		// Corruption at off. Look for the next verifiable frame; finding
		// one means an interior record is damaged, finding none means the
		// tail is torn.
		next := findNextFrame(data, off+1)
		if next < 0 {
			dropped := len(data) - off
			report.TruncatedBytes += int64(dropped)
			reason := fmt.Sprintf("torn tail: %d trailing bytes with no intact record, truncated", dropped)
			if err := os.Truncate(path, int64(off)); err != nil {
				reason += fmt.Sprintf(" (truncate failed: %v; will be re-reported next boot)", err)
			}
			report.Faults = append(report.Faults, Fault{Segment: name, Offset: int64(off), Reason: reason})
			return nil
		}
		skipped := next - off
		report.SkippedBytes += int64(skipped)
		report.Faults = append(report.Faults, Fault{
			Segment: name,
			Offset:  int64(off),
			Reason:  fmt.Sprintf("corrupt record: skipped %d bytes to the next verifiable frame", skipped),
		})
		off = next
	}
	return nil
}

// parseFrame decodes one frame at the start of b, returning the payload and
// the frame size when the magic, length and CRC all verify.
func parseFrame(b []byte) (payload []byte, n int, ok bool) {
	if len(b) < headerSize {
		return nil, 0, false
	}
	if binary.LittleEndian.Uint32(b) != frameMagic {
		return nil, 0, false
	}
	length := int(binary.LittleEndian.Uint32(b[4:]))
	if length > MaxRecord || headerSize+length > len(b) {
		return nil, 0, false
	}
	payload = b[headerSize : headerSize+length]
	if crc32.Checksum(payload, castagnoli) != binary.LittleEndian.Uint32(b[8:]) {
		return nil, 0, false
	}
	return payload, headerSize + length, true
}

// findNextFrame scans forward from offset from for the next fully
// verifiable frame start, or -1 when none exists. Verifying the whole frame
// (not just the magic) keeps a payload that happens to contain the magic
// bytes from derailing the resynchronization.
func findNextFrame(data []byte, from int) int {
	for i := from; i+headerSize <= len(data); i++ {
		if binary.LittleEndian.Uint32(data[i:]) != frameMagic {
			continue
		}
		if _, _, ok := parseFrame(data[i:]); ok {
			return i
		}
	}
	return -1
}
