// Package wal implements the framed append-only journal underneath the
// durable election registry: a directory of numbered segment files holding
// length-prefixed, CRC-protected records, written by one process and
// replayed at the next boot.
//
// The package deliberately knows nothing about what a record *means* — a
// payload is an opaque byte slice; internal/service defines the admission
// and eviction encodings on top. What it does own is everything that makes
// a journal trustworthy after a crash:
//
//   - Framing. Every record is written as a fixed 12-byte header (magic,
//     payload length, CRC-32C of the payload) followed by the payload.
//     The magic marker is what makes resynchronization after a corrupt
//     record possible; the CRC is what detects the corruption.
//   - Sync policies. Append durability is configurable: SyncAlways
//     fsyncs before every append returns (an acknowledged record survives
//     power loss), SyncBatch writes through to the OS on every append (an
//     acknowledged record survives a process kill) and fsyncs on a short
//     timer (bounded loss on power failure), SyncOff buffers in process
//     memory (fastest; a kill can lose the buffered tail, which replay
//     then truncates).
//   - Segments. The log is a sequence of journal-NNNNNNNN.wal files, each
//     opening with an 8-byte header (magic, format version byte, padding;
//     see SegmentVersion — version-1 segments predate the header and are
//     still replayed). Rotate freezes the active segment and opens the next
//     one, which is how checkpointing truncates the journal: snapshot the
//     state, then delete the frozen segments the snapshot covers.
//   - Replay. Replay walks the segments in order and delivers every intact
//     payload. Faults do not abort the boot: a torn or corrupt tail is
//     physically truncated, a corrupt record mid-log is skipped by scanning
//     forward to the next verifiable frame, and every such decision is
//     returned as a per-record fault report.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

const (
	// frameMagic starts every record frame; replay resynchronizes on it
	// after a corrupt record.
	frameMagic uint32 = 0x314C4157 // "WAL1" when read as little-endian bytes

	// headerSize is magic + payload length + payload CRC, 4 bytes each.
	headerSize = 12

	// MaxRecord bounds one payload; a header claiming more is corruption,
	// not a record (it also caps what replay will buffer).
	MaxRecord = 1 << 30

	// segmentMagic starts every segment written at SegmentVersion >= 2; the
	// first journal format wrote record frames from byte 0 with no segment
	// header, and replay still accepts those segments as version 1.
	segmentMagic uint32 = 0x324C4157 // "WAL2" when read as little-endian bytes

	// segmentHeaderSize is segment magic + version byte + 3 reserved zero
	// bytes.
	segmentHeaderSize = 8

	// SegmentVersion is the segment format this package writes. Version 2
	// introduced the segment header itself, alongside binary
	// (internal/wire-framed) record payloads in internal/service; the record
	// framing is unchanged, so either version's records replay through the
	// same scanner. Replay skips (and reports) segments from a *newer*
	// version instead of guessing at their contents.
	SegmentVersion = 2
)

// castagnoli is the CRC-32C table (the polynomial with hardware support on
// both amd64 and arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrClosed is returned by operations on a closed log.
var ErrClosed = errors.New("wal: log is closed")

// SyncPolicy selects how durable an acknowledged Append is.
type SyncPolicy uint8

const (
	// SyncAlways fsyncs before Append returns: an acknowledged record
	// survives power loss. One fsync may cover several concurrent appends
	// (group commit), but none of them returns before its record is on
	// stable storage.
	SyncAlways SyncPolicy = iota
	// SyncBatch writes every record through to the operating system before
	// Append returns (an acknowledged record survives kill -9) and fsyncs
	// on a short timer, so power loss can cost at most the last batch
	// interval of records.
	SyncBatch
	// SyncOff buffers records in process memory and lets the buffer flush
	// when it fills or the log closes. Fastest, and a crash can lose the
	// buffered tail — replay truncates whatever partial frame remains.
	SyncOff
)

// String returns the flag-form name of the policy.
func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncBatch:
		return "batch"
	case SyncOff:
		return "off"
	default:
		return fmt.Sprintf("SyncPolicy(%d)", uint8(p))
	}
}

// ParseSyncPolicy parses the flag-form name of a policy ("always", "batch",
// "off").
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "always":
		return SyncAlways, nil
	case "batch":
		return SyncBatch, nil
	case "off":
		return SyncOff, nil
	default:
		return 0, fmt.Errorf("wal: unknown sync policy %q (want always, batch or off)", s)
	}
}

// Options configure a Log.
type Options struct {
	// Sync is the append durability policy; the zero value is SyncAlways.
	Sync SyncPolicy
	// BatchInterval is the fsync cadence under SyncBatch; <= 0 selects 5ms.
	BatchInterval time.Duration
}

// Stats is a point-in-time snapshot of the log's counters. Every field is
// served from atomics, so reading stats never contends with appends or
// fsyncs — health probes stay responsive while the journal is busy.
type Stats struct {
	// Policy is the configured sync policy.
	Policy SyncPolicy
	// Appends counts records appended since Open.
	Appends uint64
	// Synced counts appended records known to be on stable storage.
	Synced uint64
	// Unsynced is the WAL lag: records appended but not yet fsynced
	// (Appends - Synced). Under SyncAlways it is transiently 0 or the
	// in-flight group; under SyncOff it grows without bound.
	Unsynced uint64
	// Syncs counts fsync calls.
	Syncs uint64
	// Bytes is the total size of the journal across all segments,
	// including records inherited from previous boots.
	Bytes int64
	// Segments is the number of segment files, including the active one.
	Segments int
}

// Log is an append-only journal over a directory of segment files. Append,
// Rotate, Stats and Close are safe for concurrent use.
type Log struct {
	dir  string
	opts Options

	// mu serializes the write side: appends, rotation, close.
	mu      sync.Mutex
	f       *os.File
	seq     uint64
	scratch []byte
	frozen  []string // full paths of non-active segments, oldest first
	buf     []byte   // SyncOff: process-memory buffer
	closed  bool

	// syncMu serializes fsyncs (group commit) and orders them against
	// rotation; lock order is syncMu before mu.
	syncMu sync.Mutex

	appends  atomic.Uint64
	flushed  atomic.Uint64 // records written through to the OS
	synced   atomic.Uint64
	syncs    atomic.Uint64
	bytes    atomic.Int64
	segments atomic.Int32

	stop     chan struct{}
	stopOnce sync.Once
	syncerWG sync.WaitGroup
}

// segmentName formats the file name of segment seq.
func segmentName(seq uint64) string { return fmt.Sprintf("journal-%08d.wal", seq) }

// listSegments returns the journal segments in dir, ordered by sequence.
func listSegments(dir string) (paths []string, seqs []uint64, err error) {
	matches, err := filepath.Glob(filepath.Join(dir, "journal-*.wal"))
	if err != nil {
		return nil, nil, fmt.Errorf("wal: scanning %s: %w", dir, err)
	}
	type seg struct {
		path string
		seq  uint64
	}
	var segs []seg
	for _, p := range matches {
		var seq uint64
		if _, err := fmt.Sscanf(filepath.Base(p), "journal-%d.wal", &seq); err != nil {
			continue // not a segment; leave foreign files alone
		}
		segs = append(segs, seg{p, seq})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].seq < segs[j].seq })
	for _, s := range segs {
		paths = append(paths, s.path)
		seqs = append(seqs, s.seq)
	}
	return paths, seqs, nil
}

// Open opens (creating if necessary) the journal in dir and starts a fresh
// active segment after any existing ones. It never appends to a segment
// from a previous boot: the old segments stay frozen exactly as replay left
// them, so a recovery that was interrupted mid-way changes nothing.
func Open(dir string, opts Options) (*Log, error) {
	if opts.BatchInterval <= 0 {
		opts.BatchInterval = 5 * time.Millisecond
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: creating %s: %w", dir, err)
	}
	paths, seqs, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	var next uint64 = 1
	var base int64
	for i, p := range paths {
		if info, err := os.Stat(p); err == nil {
			base += info.Size()
		}
		if seqs[i] >= next {
			next = seqs[i] + 1
		}
	}
	l := &Log{dir: dir, opts: opts, seq: next, frozen: paths, stop: make(chan struct{})}
	l.bytes.Store(base)
	l.segments.Store(int32(len(paths) + 1))
	if err := l.openSegment(); err != nil {
		return nil, err
	}
	if opts.Sync == SyncBatch {
		l.syncerWG.Add(1)
		go l.syncer()
	}
	return l, nil
}

// openSegment creates the active segment file l.seq and writes its header;
// the caller holds mu (or is Open, before the log escapes).
func (l *Log) openSegment() error {
	f, err := os.OpenFile(filepath.Join(l.dir, segmentName(l.seq)), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("wal: creating segment: %w", err)
	}
	var hdr [segmentHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[:], segmentMagic)
	hdr[4] = SegmentVersion
	if _, err := f.Write(hdr[:]); err != nil {
		f.Close()
		return fmt.Errorf("wal: writing segment header: %w", err)
	}
	l.f = f
	l.bytes.Add(segmentHeaderSize)
	return nil
}

// Dir returns the journal directory.
func (l *Log) Dir() string { return l.dir }

// Append writes one record and applies the sync policy before returning:
// under SyncAlways the record is on stable storage, under SyncBatch it is
// in the operating system, under SyncOff it may still sit in the process
// buffer. Append is safe for concurrent use; concurrent records land in
// some serial order.
func (l *Log) Append(payload []byte) error {
	if len(payload) > MaxRecord {
		return fmt.Errorf("wal: record of %d bytes exceeds the %d-byte limit", len(payload), MaxRecord)
	}
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return ErrClosed
	}
	hdr := l.scratch[:0]
	hdr = binary.LittleEndian.AppendUint32(hdr, frameMagic)
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(len(payload)))
	hdr = binary.LittleEndian.AppendUint32(hdr, crc32.Checksum(payload, castagnoli))
	l.scratch = hdr
	var err error
	if l.opts.Sync == SyncOff {
		// Buffer in process memory; flush when the buffer is large enough
		// that the write amortizes.
		l.buf = append(l.buf, hdr...)
		l.buf = append(l.buf, payload...)
		if len(l.buf) >= 1<<16 {
			err = l.flushLocked()
		}
	} else {
		_, err = l.f.Write(hdr)
		if err == nil {
			_, err = l.f.Write(payload)
		}
	}
	if err != nil {
		l.mu.Unlock()
		return fmt.Errorf("wal: appending record: %w", err)
	}
	seq := l.appends.Add(1)
	l.bytes.Add(int64(headerSize + len(payload)))
	if l.opts.Sync != SyncOff {
		l.flushed.Store(seq)
	}
	l.mu.Unlock()
	if l.opts.Sync == SyncAlways {
		return l.syncTo(seq)
	}
	return nil
}

// flushLocked writes the SyncOff buffer through to the OS; caller holds mu.
func (l *Log) flushLocked() error {
	if len(l.buf) == 0 {
		l.flushed.Store(l.appends.Load())
		return nil
	}
	if _, err := l.f.Write(l.buf); err != nil {
		return err
	}
	l.buf = l.buf[:0]
	l.flushed.Store(l.appends.Load())
	return nil
}

// syncTo ensures every record up to seq is fsynced, group-committing with
// concurrent callers: whoever holds syncMu syncs for everyone flushed so
// far, and late arrivals find their record already covered.
func (l *Log) syncTo(seq uint64) error {
	l.syncMu.Lock()
	defer l.syncMu.Unlock()
	if l.synced.Load() >= seq {
		return nil
	}
	target := l.flushed.Load()
	l.mu.Lock()
	f, closed := l.f, l.closed
	l.mu.Unlock()
	if closed {
		return ErrClosed
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("wal: fsync: %w", err)
	}
	l.syncs.Add(1)
	if target > l.synced.Load() {
		l.synced.Store(target)
	}
	return nil
}

// Sync flushes and fsyncs everything appended so far, regardless of policy.
func (l *Log) Sync() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return ErrClosed
	}
	err := l.flushLocked()
	seq := l.appends.Load()
	l.mu.Unlock()
	if err != nil {
		return fmt.Errorf("wal: flushing: %w", err)
	}
	return l.syncTo(seq)
}

// syncer is the SyncBatch background goroutine: it fsyncs on a timer
// whenever records are flushed but not yet durable.
func (l *Log) syncer() {
	defer l.syncerWG.Done()
	t := time.NewTicker(l.opts.BatchInterval)
	defer t.Stop()
	for {
		select {
		case <-l.stop:
			return
		case <-t.C:
			if target := l.flushed.Load(); target > l.synced.Load() {
				_ = l.syncTo(target) // an fsync error here resurfaces on the next Append/Sync/Close
			}
		}
	}
}

// Rotate freezes the active segment (flushed, fsynced, closed) and opens
// the next one. It returns the full paths of every frozen segment, oldest
// first — the set a checkpoint may delete once its snapshot commits.
func (l *Log) Rotate() ([]string, error) {
	l.syncMu.Lock()
	defer l.syncMu.Unlock()
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil, ErrClosed
	}
	if err := l.flushLocked(); err != nil {
		return nil, fmt.Errorf("wal: flushing before rotate: %w", err)
	}
	if err := l.f.Sync(); err != nil {
		return nil, fmt.Errorf("wal: fsync before rotate: %w", err)
	}
	l.syncs.Add(1)
	l.synced.Store(l.appends.Load())
	old := l.f.Name()
	if err := l.f.Close(); err != nil {
		return nil, fmt.Errorf("wal: closing segment: %w", err)
	}
	l.frozen = append(l.frozen, old)
	l.seq++
	if err := l.openSegment(); err != nil {
		return nil, err
	}
	l.segments.Store(int32(len(l.frozen) + 1))
	frozen := make([]string, len(l.frozen))
	copy(frozen, l.frozen)
	return frozen, nil
}

// RemoveSegments deletes frozen segments (paths as returned by Rotate) and
// drops them from the log's accounting. Removing the active segment is an
// error; missing files are ignored (a retried checkpoint may have removed
// them already).
func (l *Log) RemoveSegments(paths []string) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	remove := make(map[string]bool, len(paths))
	for _, p := range paths {
		remove[p] = true
	}
	if l.f != nil && remove[l.f.Name()] {
		return fmt.Errorf("wal: refusing to remove the active segment %s", l.f.Name())
	}
	kept := l.frozen[:0]
	for _, p := range l.frozen {
		if !remove[p] {
			kept = append(kept, p)
			continue
		}
		if info, err := os.Stat(p); err == nil {
			l.bytes.Add(-info.Size())
		}
		if err := os.Remove(p); err != nil && !os.IsNotExist(err) {
			return fmt.Errorf("wal: removing segment: %w", err)
		}
	}
	l.frozen = kept
	l.segments.Store(int32(len(l.frozen) + 1))
	return nil
}

// Stats returns the log's counters; it reads atomics only.
func (l *Log) Stats() Stats {
	appends := l.appends.Load()
	synced := l.synced.Load()
	if synced > appends {
		synced = appends
	}
	return Stats{
		Policy:   l.opts.Sync,
		Appends:  appends,
		Synced:   synced,
		Unsynced: appends - synced,
		Syncs:    l.syncs.Load(),
		Bytes:    l.bytes.Load(),
		Segments: int(l.segments.Load()),
	}
}

// Close flushes, fsyncs and closes the active segment. Closing twice is
// safe.
func (l *Log) Close() error {
	l.stopOnce.Do(func() { close(l.stop) })
	l.syncerWG.Wait()
	l.syncMu.Lock()
	defer l.syncMu.Unlock()
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	if err := l.flushLocked(); err != nil {
		l.f.Close()
		return fmt.Errorf("wal: flushing on close: %w", err)
	}
	if err := l.f.Sync(); err != nil {
		l.f.Close()
		return fmt.Errorf("wal: fsync on close: %w", err)
	}
	l.synced.Store(l.appends.Load())
	return l.f.Close()
}
