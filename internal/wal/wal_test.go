package wal

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// payloads returns n distinct test payloads of varying size.
func payloads(n int) [][]byte {
	out := make([][]byte, n)
	for i := range out {
		p := []byte(fmt.Sprintf("record-%04d:", i))
		for len(p) < 16+13*i%97 {
			p = append(p, byte('a'+i%26))
		}
		out[i] = p
	}
	return out
}

// appendAll opens a log in dir, appends every payload, and closes it.
func appendAll(t *testing.T, dir string, opts Options, recs [][]byte) {
	t.Helper()
	l, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	for i, p := range recs {
		if err := l.Append(p); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
}

// replayAll returns every replayed payload and the report.
func replayAll(t *testing.T, dir string) ([][]byte, *Report) {
	t.Helper()
	var got [][]byte
	report, err := Replay(dir, func(p []byte) error {
		got = append(got, append([]byte(nil), p...))
		return nil
	})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	return got, report
}

func checkRecords(t *testing.T, got, want [][]byte) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("record %d: got %q, want %q", i, got[i], want[i])
		}
	}
}

// activeSegment returns the single segment file in dir (for tests that
// wrote one segment) or the last one.
func lastSegment(t *testing.T, dir string) string {
	t.Helper()
	paths, _, err := listSegments(dir)
	if err != nil || len(paths) == 0 {
		t.Fatalf("no segments in %s: %v", dir, err)
	}
	return paths[len(paths)-1]
}

func TestRoundTripAllPolicies(t *testing.T) {
	for _, policy := range []SyncPolicy{SyncAlways, SyncBatch, SyncOff} {
		t.Run(policy.String(), func(t *testing.T) {
			dir := t.TempDir()
			recs := payloads(64)
			appendAll(t, dir, Options{Sync: policy}, recs)
			got, report := replayAll(t, dir)
			checkRecords(t, got, recs)
			if !report.Clean() {
				t.Fatalf("clean journal reported faults: %+v", report.Faults)
			}
		})
	}
}

func TestConcurrentAppend(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Sync: SyncBatch})
	if err != nil {
		t.Fatal(err)
	}
	const goroutines, per = 8, 50
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := l.Append([]byte(fmt.Sprintf("g%02d-i%03d", g, i))); err != nil {
					t.Errorf("append: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	got, report := replayAll(t, dir)
	if len(got) != goroutines*per || !report.Clean() {
		t.Fatalf("replayed %d records (faults %v), want %d clean", len(got), report.Faults, goroutines*per)
	}
	if st := l.Stats(); st.Appends != goroutines*per {
		t.Fatalf("stats appends %d, want %d", st.Appends, goroutines*per)
	}
}

// TestTornTailTruncated injects the classic kill -9 residue: the final
// record is cut mid-payload. Replay must deliver everything before it,
// truncate the tail, and a second replay must be clean.
func TestTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	recs := payloads(20)
	appendAll(t, dir, Options{Sync: SyncAlways}, recs)
	seg := lastSegment(t, dir)
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(seg, data[:len(data)-7], 0o644); err != nil {
		t.Fatal(err)
	}
	got, report := replayAll(t, dir)
	checkRecords(t, got, recs[:19])
	if report.TruncatedBytes == 0 || len(report.Faults) != 1 {
		t.Fatalf("report %+v, want one torn-tail fault with truncated bytes", report)
	}
	// The truncation is physical: the next boot replays clean.
	got, report = replayAll(t, dir)
	checkRecords(t, got, recs[:19])
	if !report.Clean() {
		t.Fatalf("second replay still reports faults: %+v", report.Faults)
	}
}

// TestCorruptInteriorSkipped flips a byte inside an interior record's
// payload: that record is skipped, every other record survives.
func TestCorruptInteriorSkipped(t *testing.T) {
	dir := t.TempDir()
	recs := payloads(10)
	appendAll(t, dir, Options{Sync: SyncAlways}, recs)
	seg := lastSegment(t, dir)
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	// Locate record 4's payload by walking the frames, then flip one byte.
	off := segmentHeaderSize
	for i := 0; i < 4; i++ {
		length := int(binary.LittleEndian.Uint32(data[off+4:]))
		off += headerSize + length
	}
	data[off+headerSize] ^= 0xFF
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}
	got, report := replayAll(t, dir)
	want := append(append([][]byte(nil), recs[:4]...), recs[5:]...)
	checkRecords(t, got, want)
	if len(report.Faults) != 1 || report.SkippedBytes == 0 {
		t.Fatalf("report %+v, want one corrupt-record fault with skipped bytes", report)
	}
}

// TestCorruptHeaderResync zeroes a record's whole header (magic included):
// replay must resynchronize on the next frame, not mistake garbage for it.
func TestCorruptHeaderResync(t *testing.T) {
	dir := t.TempDir()
	recs := payloads(6)
	appendAll(t, dir, Options{Sync: SyncAlways}, recs)
	seg := lastSegment(t, dir)
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	off := segmentHeaderSize
	for i := 0; i < 2; i++ {
		length := int(binary.LittleEndian.Uint32(data[off+4:]))
		off += headerSize + length
	}
	for i := 0; i < headerSize; i++ {
		data[off+i] = 0
	}
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}
	got, report := replayAll(t, dir)
	want := append(append([][]byte(nil), recs[:2]...), recs[3:]...)
	checkRecords(t, got, want)
	if len(report.Faults) != 1 {
		t.Fatalf("report %+v, want exactly one fault", report)
	}
}

// TestMagicInsidePayload pins the resynchronization scan against payloads
// that embed the frame magic: a corrupt record whose neighbor contains the
// magic bytes must not derail replay into the middle of a record.
func TestMagicInsidePayload(t *testing.T) {
	dir := t.TempDir()
	magic := binary.LittleEndian.AppendUint32(nil, frameMagic)
	recs := [][]byte{
		[]byte("first"),
		append(append([]byte("x"), magic...), []byte("embedded-magic-payload")...),
		[]byte("third"),
	}
	appendAll(t, dir, Options{Sync: SyncAlways}, recs)
	seg := lastSegment(t, dir)
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	data[segmentHeaderSize+headerSize] ^= 0xFF // corrupt record 0's payload
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}
	got, _ := replayAll(t, dir)
	checkRecords(t, got, recs[1:])
}

// TestRotateAndRemove drives the checkpoint primitive: rotation freezes
// segments, removal drops them, and replay sees exactly the surviving
// records across the segment boundary.
func TestRotateAndRemove(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	recs := payloads(9)
	for _, p := range recs[:4] {
		if err := l.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	frozen, err := l.Rotate()
	if err != nil {
		t.Fatal(err)
	}
	if len(frozen) != 1 {
		t.Fatalf("frozen %v, want 1 segment", frozen)
	}
	for _, p := range recs[4:] {
		if err := l.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	// Pre-removal replay sees everything (checkpoint overlap is the
	// caller's concern; the journal is just complete).
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	got, _ := replayAll(t, dir)
	checkRecords(t, got, recs)
	if err := l.RemoveSegments(frozen); err != nil {
		t.Fatal(err)
	}
	got, report := replayAll(t, dir)
	checkRecords(t, got, recs[4:])
	if report.Segments != 1 {
		t.Fatalf("replayed %d segments after removal, want 1", report.Segments)
	}
	if st := l.Stats(); st.Segments != 1 {
		t.Fatalf("stats segments %d, want 1", st.Segments)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// A new boot opens a fresh segment after the surviving ones.
	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := l2.Append([]byte("after-reboot")); err != nil {
		t.Fatal(err)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	got, _ = replayAll(t, dir)
	checkRecords(t, got, append(append([][]byte(nil), recs[4:]...), []byte("after-reboot")))
}

func TestStatsAndLag(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Sync: SyncOff})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i := 0; i < 5; i++ {
		if err := l.Append([]byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	st := l.Stats()
	if st.Appends != 5 || st.Unsynced != 5 {
		t.Fatalf("SyncOff stats %+v, want 5 appended and 5 unsynced", st)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if st := l.Stats(); st.Unsynced != 0 || st.Synced != 5 {
		t.Fatalf("post-Sync stats %+v, want lag 0", st)
	}
}

func TestClosedLog(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err) // idempotent
	}
	if err := l.Append([]byte("late")); err != ErrClosed {
		t.Fatalf("append on closed log: %v, want ErrClosed", err)
	}
	if _, err := l.Rotate(); err != ErrClosed {
		t.Fatalf("rotate on closed log: %v, want ErrClosed", err)
	}
}

// TestHeaderlessSegmentReplays pins backward compatibility with format
// version 1: a segment whose records start at byte 0, with no segment
// header, replays cleanly alongside headered segments.
func TestHeaderlessSegmentReplays(t *testing.T) {
	dir := t.TempDir()
	recs := payloads(5)
	var old []byte
	for _, p := range recs[:3] {
		old = binary.LittleEndian.AppendUint32(old, frameMagic)
		old = binary.LittleEndian.AppendUint32(old, uint32(len(p)))
		old = binary.LittleEndian.AppendUint32(old, crc32.Checksum(p, castagnoli))
		old = append(old, p...)
	}
	if err := os.WriteFile(filepath.Join(dir, segmentName(1)), old, 0o644); err != nil {
		t.Fatal(err)
	}
	// A current-format boot appends after it in a fresh, headered segment.
	appendAll(t, dir, Options{Sync: SyncAlways}, recs[3:])
	got, report := replayAll(t, dir)
	checkRecords(t, got, recs)
	if !report.Clean() || report.Segments != 2 {
		t.Fatalf("mixed-version replay report %+v, want 2 clean segments", report)
	}
}

// TestNewerSegmentVersionSkipped pins the forward stance: a segment whose
// header claims a format this build does not know is skipped whole and
// reported, never scanned on guesses about its record encoding.
func TestNewerSegmentVersionSkipped(t *testing.T) {
	dir := t.TempDir()
	recs := payloads(4)
	appendAll(t, dir, Options{Sync: SyncAlways}, recs[:2])
	future := binary.LittleEndian.AppendUint32(nil, segmentMagic)
	future = append(future, SegmentVersion+1, 0, 0, 0)
	future = append(future, []byte("records of a format from the future")...)
	if err := os.WriteFile(filepath.Join(dir, segmentName(2)), future, 0o644); err != nil {
		t.Fatal(err)
	}
	got, report := replayAll(t, dir)
	checkRecords(t, got, recs[:2])
	if len(report.Faults) != 1 {
		t.Fatalf("report %+v, want exactly one newer-version fault", report)
	}
}

func TestParseSyncPolicy(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want SyncPolicy
	}{{"always", SyncAlways}, {"Batch", SyncBatch}, {" off ", SyncOff}} {
		got, err := ParseSyncPolicy(tc.in)
		if err != nil || got != tc.want {
			t.Fatalf("ParseSyncPolicy(%q) = %v, %v", tc.in, got, err)
		}
	}
	if _, err := ParseSyncPolicy("sometimes"); err == nil {
		t.Fatal("ParseSyncPolicy accepted an unknown policy")
	}
}

// BenchmarkWALAppend measures one record append under each sync policy —
// the per-admission durability cost the registry pays off the serve path.
func BenchmarkWALAppend(b *testing.B) {
	payload := bytes.Repeat([]byte("x"), 4096)
	for _, policy := range []SyncPolicy{SyncAlways, SyncBatch, SyncOff} {
		b.Run(policy.String(), func(b *testing.B) {
			l, err := Open(b.TempDir(), Options{Sync: policy})
			if err != nil {
				b.Fatal(err)
			}
			defer l.Close()
			b.SetBytes(int64(len(payload)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := l.Append(payload); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkWALReplay measures replaying a 1000-record journal — the boot
// cost recovery adds on top of the checkpoint restore.
func BenchmarkWALReplay(b *testing.B) {
	dir := b.TempDir()
	l, err := Open(dir, Options{Sync: SyncOff})
	if err != nil {
		b.Fatal(err)
	}
	payload := bytes.Repeat([]byte("y"), 4096)
	const records = 1000
	for i := 0; i < records; i++ {
		if err := l.Append(payload); err != nil {
			b.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(records * len(payload)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		report, err := Replay(dir, func(p []byte) error { n++; return nil })
		if err != nil || n != records || !report.Clean() {
			b.Fatalf("replay: %d records, %+v, %v", n, report, err)
		}
	}
}
