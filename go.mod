module anonradio

go 1.24
