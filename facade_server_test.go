package anonradio_test

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http/httptest"
	"testing"

	"anonradio"
)

// TestFacadeServerAndSnapshot drives the facade's serving surface end to
// end: NewServer over a NewService, one HTTP election, SnapshotService,
// RestoreService into a fresh service, and agreement between the served
// and restored outcomes.
func TestFacadeServerAndSnapshot(t *testing.T) {
	svc := anonradio.NewService(anonradio.ServiceOptions{Shards: 2})
	defer svc.Close()
	cfg := anonradio.StaggeredClique(7)
	if err := svc.Register("demo", cfg); err != nil {
		t.Fatalf("register: %v", err)
	}

	srv := anonradio.NewServer(svc, anonradio.ServerOptions{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	body, _ := json.Marshal(map[string]string{"key": "demo"})
	resp, err := ts.Client().Post(ts.URL+"/v1/elect", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/elect: %v", err)
	}
	defer resp.Body.Close()
	var out struct {
		Elected bool `json:"elected"`
		Leader  int  `json:"leader"`
		Rounds  int  `json:"rounds"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decode: %v", err)
	}
	direct, err := svc.Elect("demo")
	if err != nil {
		t.Fatalf("in-process elect: %v", err)
	}
	if !out.Elected || out.Leader != direct.Leader || out.Rounds != direct.Rounds {
		t.Fatalf("served %+v, in-process %+v", out, direct)
	}

	dir := t.TempDir()
	manifest, err := anonradio.SnapshotService(svc, dir)
	if err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	if len(manifest.Entries) != 1 || manifest.Entries[0].Key != "demo" {
		t.Fatalf("manifest: %+v", manifest)
	}
	restored := anonradio.NewService(anonradio.ServiceOptions{Shards: 1})
	defer restored.Close()
	report, err := anonradio.RestoreService(restored, dir)
	if err != nil {
		t.Fatalf("restore: %v", err)
	}
	if report.Entries != 1 || report.Trusted != 1 {
		t.Fatalf("restore report: %+v", report)
	}
	again, err := restored.Elect("demo")
	if err != nil || again.Leader != direct.Leader || again.Rounds != direct.Rounds {
		t.Fatalf("restored elect: %v %+v, want %+v", err, again, direct)
	}

	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}
