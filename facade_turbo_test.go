package anonradio

import (
	"testing"
)

func TestFacadeClassifyTurboAgrees(t *testing.T) {
	cfg := SpanFamilyH(4)
	base, err := Classify(cfg)
	if err != nil {
		t.Fatalf("Classify: %v", err)
	}
	turbo, err := ClassifyTurbo(cfg, ClassifyOptions{RecordSnapshots: true})
	if err != nil {
		t.Fatalf("ClassifyTurbo: %v", err)
	}
	if turbo.Feasible() != base.Feasible() || turbo.Leader != base.Leader || turbo.Iterations() != base.Iterations() {
		t.Fatalf("turbo facade diverged: %+v vs %+v", turbo.Decision, base.Decision)
	}
	lean, err := ClassifyTurbo(cfg, ClassifyOptions{})
	if err != nil {
		t.Fatalf("lean ClassifyTurbo: %v", err)
	}
	if lean.Feasible() != base.Feasible() || lean.Leader != base.Leader {
		t.Fatalf("lean turbo facade diverged")
	}
}

func TestFacadeClassifyBatchAndSurvey(t *testing.T) {
	cfgs := []*Config{
		SingleNode(),
		SymmetricPair(),
		SpanFamilyH(3),
		StaggeredClique(6),
	}
	results := ClassifyBatch(cfgs, ClassifyOptions{}, 2)
	wantFeasible := []bool{true, false, true, true}
	for i, res := range results {
		if res.Err != nil {
			t.Fatalf("batch config %d: %v", i, res.Err)
		}
		if res.Report.Feasible() != wantFeasible[i] {
			t.Fatalf("batch config %d: feasible=%v, want %v", i, res.Report.Feasible(), wantFeasible[i])
		}
	}

	survey, err := SurveyParallel(40, 0, func(i int) *Config {
		return RandomConfig(12, 0.3, 3, int64(100+i))
	})
	if err != nil {
		t.Fatalf("SurveyParallel: %v", err)
	}
	if survey.Count != 40 || len(survey.Verdicts) != 40 {
		t.Fatalf("survey shape wrong: %+v", survey)
	}
	for i, ok := range survey.Verdicts {
		rep, err := Classify(RandomConfig(12, 0.3, 3, int64(100+i)))
		if err != nil {
			t.Fatalf("config %d: %v", i, err)
		}
		if rep.Feasible() != ok {
			t.Fatalf("config %d: survey verdict %v, direct %v", i, ok, rep.Feasible())
		}
	}
}

func TestFacadeSimulatorReuse(t *testing.T) {
	cfg := SpanFamilyH(3)
	d, err := BuildElection(cfg)
	if err != nil {
		t.Fatalf("BuildElection: %v", err)
	}
	sim, err := NewSimulator(d.Config)
	if err != nil {
		t.Fatalf("NewSimulator: %v", err)
	}
	want, err := Simulate(d, SequentialEngine, false)
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	for i := 0; i < 3; i++ {
		got, err := sim.Run(d.DRIP, SimulationOptions{})
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		if got.GlobalRounds != want.GlobalRounds {
			t.Fatalf("run %d: %d rounds, want %d", i, got.GlobalRounds, want.GlobalRounds)
		}
		for v := range want.Histories {
			if !got.Histories[v].Equal(want.Histories[v]) {
				t.Fatalf("run %d: node %d history diverged", i, v)
			}
		}
	}
}
