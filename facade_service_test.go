package anonradio

import (
	"fmt"
	"testing"
	"time"
)

// TestFacadeService exercises the sharded election service through the
// public API: admission by build and by compiled artifact, single and batch
// serving, per-shard stats, and agreement with the one-shot Elect paths on
// every engine.
func TestFacadeService(t *testing.T) {
	svc := NewService(ServiceOptions{Shards: 3})
	defer svc.Close()

	arena := NewBuildArena()
	keys := make([]string, 0, 6)
	expected := map[string]int{}
	for i, cfg := range []*Config{
		StaggeredClique(8),
		StaggeredPath(7, 2),
		LineFamilyG(2),
		StaggeredClique(5),
	} {
		key := fmt.Sprintf("cfg-%d", i)
		// Build through the arena first so the facade arena path is covered,
		// then admit the same configuration into the service.
		d, err := BuildElectionInto(arena, cfg)
		if err != nil {
			t.Fatalf("%s: %v", key, err)
		}
		expected[key] = d.ExpectedLeader
		if i%2 == 0 {
			if err := svc.Register(key, cfg); err != nil {
				t.Fatalf("register %s: %v", key, err)
			}
		} else {
			if err := svc.RegisterCompiled(key, CompileElection(d), cfg); err != nil {
				t.Fatalf("register compiled %s: %v", key, err)
			}
		}
		keys = append(keys, key)

		out, err := svc.Elect(key)
		if err != nil {
			t.Fatalf("elect %s: %v", key, err)
		}
		if out.Leader != d.ExpectedLeader {
			t.Fatalf("%s: service elected %d, want %d", key, out.Leader, d.ExpectedLeader)
		}
		for _, kind := range EngineKinds() {
			direct, _, err := ElectWith(cfg, kind)
			if err != nil {
				t.Fatalf("%s engine %s: %v", key, kind, err)
			}
			if direct.Leader() != out.Leader || direct.Rounds != out.Rounds {
				t.Fatalf("%s: engine %s (%d, %d rounds) disagrees with service (%d, %d rounds)",
					key, kind, direct.Leader(), direct.Rounds, out.Leader, out.Rounds)
			}
		}
	}

	outs, err := svc.ElectBatch(keys, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, out := range outs {
		if out.Leader != expected[keys[i]] {
			t.Fatalf("batch slot %d (%s): leader %d, want %d", i, keys[i], out.Leader, expected[keys[i]])
		}
	}

	stats, err := svc.Stats()
	if err != nil {
		t.Fatal(err)
	}
	total := ServiceTotals(stats)
	wantElections := int64(len(keys)) * 2 // one warm-up each + one batch each
	if total.Elections != wantElections || total.Configs != len(keys) {
		t.Fatalf("totals %+v, want %d elections over %d configs", total, wantElections, len(keys))
	}
	if svc.Shards() != 3 {
		t.Fatalf("Shards() = %d, want 3", svc.Shards())
	}
}

// TestFacadeServiceAsyncAdmission exercises the async admission flow —
// submit, poll to a terminal state, serve — through the public API.
func TestFacadeServiceAsyncAdmission(t *testing.T) {
	svc := NewService(ServiceOptions{Shards: 2, Builders: 1})
	defer svc.Close()
	if err := svc.RegisterAsync("clique", StaggeredClique(9)); err != nil {
		t.Fatal(err)
	}
	for !svc.AdmissionStatus("clique").State.Terminal() {
		time.Sleep(time.Millisecond)
	}
	if st := svc.AdmissionStatus("clique"); st.State != ServiceAdmissionDone {
		t.Fatalf("async admission ended %s: %v", st.State, st.Err)
	}
	out, err := svc.Elect("clique")
	if err != nil || !out.Elected() {
		t.Fatalf("elect after async admission: %+v %v", out, err)
	}
	if st := svc.AdmissionStatus("never"); st.State != ServiceAdmissionUnknown {
		t.Fatalf("unsubmitted key reported %s", st.State)
	}
	ast := svc.AdmissionStats()
	if ast.Submitted != 1 || ast.Completed != 1 || ast.Builders != 1 {
		t.Fatalf("admission stats %+v", ast)
	}
}
