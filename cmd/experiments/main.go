// Command experiments regenerates the evaluation tables of EXPERIMENTS.md:
// the scaling measurements (E1, E2, E8), the replays of the paper's lower
// bounds and impossibility results (E3-E6), the feasibility survey (E7) and
// the baseline comparison (E9).
//
// Usage:
//
//	experiments [-quick] [-seed N] [-only E3] [-engine parallel] [-o results.txt]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"anonradio"
)

func main() {
	var (
		quick  = flag.Bool("quick", false, "run reduced parameter sweeps")
		seed   = flag.Int64("seed", 1, "random seed for all workloads")
		only   = flag.String("only", "", "run a single experiment (E1..E20, A1)")
		engine = flag.String("engine", "sequential", "simulation engine for the election experiments: "+anonradio.EngineList())
		out    = flag.String("o", "", "output file (default: standard output)")
	)
	flag.Parse()

	kind := anonradio.EngineKind(*engine)
	if err := anonradio.ValidateEngine(kind); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(2)
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}

	if *only != "" {
		table, err := anonradio.RunExperimentOn(*only, *quick, *seed, kind)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintln(w, table.String())
		return
	}
	if err := anonradio.RunExperimentsOn(w, *quick, *seed, kind); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
