// Command benchjson converts the text output of `go test -bench` into a JSON
// array, one object per benchmark result line. CI pipes the engine and
// election benchmarks through it to publish a BENCH_engines.json artifact,
// so the performance trajectory of the simulation core is tracked per
// commit.
//
// Usage:
//
//	go test -run xxx -bench 'E8|Election' -benchtime 1x -benchmem . | benchjson > BENCH_engines.json
//
// Lines that are not benchmark results (headers, PASS/ok trailers) are
// skipped; context lines (goos, goarch, cpu, pkg) are captured into every
// record.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	Name        string  `json:"name"`
	Package     string  `json:"package,omitempty"`
	CPU         string  `json:"cpu,omitempty"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
	HasMem      bool    `json:"has_mem_stats"`
}

func main() {
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	var (
		results []Result
		pkg     string
		cpu     string
	)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "pkg:"):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
			continue
		case strings.HasPrefix(line, "cpu:"):
			cpu = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		case !strings.HasPrefix(line, "Benchmark"):
			continue
		}
		r, ok := parseLine(line)
		if !ok {
			continue
		}
		r.Package = pkg
		r.CPU = cpu
		results = append(results, r)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parseLine parses one benchmark result, e.g.
//
//	BenchmarkE8ParallelEngine/n=64-8  182  653959 ns/op  1070697 B/op  612 allocs/op
func parseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !hasUnit(fields, "ns/op") {
		return Result{}, false
	}
	var r Result
	r.Name = fields[0]
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r.Iterations = iters
	for i := 2; i+1 < len(fields); i += 2 {
		value, unit := fields[i], fields[i+1]
		switch unit {
		case "ns/op":
			v, err := strconv.ParseFloat(value, 64)
			if err != nil {
				return Result{}, false
			}
			r.NsPerOp = v
		case "B/op":
			v, err := strconv.ParseInt(value, 10, 64)
			if err != nil {
				return Result{}, false
			}
			r.BytesPerOp = v
			r.HasMem = true
		case "allocs/op":
			v, err := strconv.ParseInt(value, 10, 64)
			if err != nil {
				return Result{}, false
			}
			r.AllocsPerOp = v
			r.HasMem = true
		}
	}
	return r, r.NsPerOp > 0 || r.Iterations > 0
}

func hasUnit(fields []string, unit string) bool {
	for _, f := range fields {
		if f == unit {
			return true
		}
	}
	return false
}
