// Command classify decides whether a configuration (an anonymous radio
// network with wake-up tags) is feasible, i.e. whether a deterministic
// distributed leader election algorithm exists for it, using the paper's
// Classifier algorithm.
//
// Usage:
//
//	classify -config cfg.txt [-verbose] [-dot] [-crosscheck]
//
// The configuration file uses the text format documented in the README
// (nodes / tag / edge directives). With no -config flag the configuration is
// read from standard input.
package main

import (
	"flag"
	"fmt"
	"os"

	"anonradio"
)

func main() {
	var (
		path       = flag.String("config", "", "configuration file (default: read standard input)")
		verbose    = flag.Bool("verbose", false, "print the full classifier report (partition evolution and lists)")
		dot        = flag.Bool("dot", false, "print the configuration in Graphviz DOT format and exit")
		crosscheck = flag.Bool("crosscheck", false, "also run the independent naive feasibility oracle and compare")
	)
	flag.Parse()

	cfg, err := readConfig(*path)
	if err != nil {
		fatal(err)
	}
	if *dot {
		fmt.Print(cfg.DOT())
		return
	}

	report, err := anonradio.Classify(cfg)
	if err != nil {
		fatal(err)
	}

	if *verbose {
		fmt.Print(report.Summary())
	} else {
		fmt.Printf("configuration: %s\n", cfg)
		fmt.Printf("feasible:      %v\n", report.Feasible())
		if report.Feasible() {
			fmt.Printf("leader:        node %d\n", report.Leader)
		}
		fmt.Printf("iterations:    %d\n", report.Iterations())
	}

	if *crosscheck {
		feasible, agree, err := anonradio.CrossCheckFeasibility(cfg)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("oracle:        feasible=%v agree=%v\n", feasible, agree)
		if !agree {
			fatal(fmt.Errorf("classifier and naive oracle disagree"))
		}
	}

	if !report.Feasible() {
		os.Exit(2)
	}
}

func readConfig(path string) (*anonradio.Config, error) {
	if path == "" {
		return anonradio.ParseConfig(os.Stdin)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return anonradio.ParseConfig(f)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "classify:", err)
	os.Exit(1)
}
