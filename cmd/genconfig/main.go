// Command genconfig generates configuration files: the paper's named
// families (G_m, H_m, S_m), simple deterministic families, or random
// connected configurations. The output uses the text format consumed by the
// classify and elect commands.
//
// Usage examples:
//
//	genconfig -family h -m 5
//	genconfig -family g -m 3 -o g3.txt
//	genconfig -family random -n 32 -p 0.2 -span 4 -seed 7
//	genconfig -family staggered-clique -n 16
package main

import (
	"flag"
	"fmt"
	"os"

	"anonradio"
)

func main() {
	var (
		family = flag.String("family", "random", "family: g, h, s, staggered-path, staggered-clique, star, random")
		m      = flag.Int("m", 2, "family index for g, h, s")
		n      = flag.Int("n", 16, "number of nodes for the other families")
		step   = flag.Int("step", 1, "tag step for staggered-path")
		span   = flag.Int("span", 4, "largest wake-up tag for random configurations")
		p      = flag.Float64("p", 0.2, "extra edge probability for random configurations")
		seed   = flag.Int64("seed", 1, "random seed")
		out    = flag.String("o", "", "output file (default: standard output)")
	)
	flag.Parse()

	cfg, err := build(*family, *m, *n, *step, *span, *p, *seed)
	if err != nil {
		fatal(err)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := cfg.Encode(w); err != nil {
		fatal(err)
	}
}

func build(family string, m, n, step, span int, p float64, seed int64) (cfg *anonradio.Config, err error) {
	defer func() {
		// The family constructors panic on out-of-range parameters; convert
		// that into a CLI error.
		if r := recover(); r != nil {
			cfg, err = nil, fmt.Errorf("%v", r)
		}
	}()
	switch family {
	case "g":
		return anonradio.LineFamilyG(m), nil
	case "h":
		return anonradio.SpanFamilyH(m), nil
	case "s":
		return anonradio.SymmetricFamilyS(m), nil
	case "staggered-path":
		return anonradio.StaggeredPath(n, step), nil
	case "staggered-clique":
		return anonradio.StaggeredClique(n), nil
	case "star":
		return anonradio.EarlyCenterStar(n, span), nil
	case "random":
		return anonradio.RandomConfig(n, p, span, seed), nil
	default:
		return nil, fmt.Errorf("unknown family %q", family)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "genconfig:", err)
	os.Exit(1)
}
