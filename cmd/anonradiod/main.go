// Command anonradiod is the election server daemon: it serves the sharded
// election service of internal/service over the HTTP/JSON API of
// internal/server (register, elect, batch elect, evict, stats, health).
//
// The daemon owns the registry lifecycle around the network layer:
//
//   - with -wal-dir it runs durably: every acknowledged admission and
//     eviction is journaled before the call returns (fsync policy per
//     -wal-sync), a background checkpoint truncates the journal, and a
//     restart replays checkpoint + journal through the digest-trusted
//     fast path — crash recovery included (torn or corrupt records are
//     truncated or skipped and reported, never a refused boot);
//   - with -restore-on-boot it re-admits a snapshot directory through the
//     digest-trusted artifact fast path before the listener opens, so a
//     cold restart skips reclassifying and recompiling the fleet;
//   - on SIGINT/SIGTERM it shuts the listener down gracefully (in-flight
//     requests complete, bounded by -shutdown-timeout) and, with
//     -snapshot-on-shutdown, persists the then-quiescent registry.
//
// Usage:
//
//	anonradiod [-listen :8080] [-shards N] [-queue-depth N] [-builders N]
//	           [-admission-queue N] [-trust-artifacts] [-snapshot-dir DIR]
//	           [-restore-on-boot] [-snapshot-on-shutdown]
//	           [-shutdown-timeout 10s] [-wal-dir DIR]
//	           [-wal-sync always|batch|off] [-checkpoint-every 1m]
//	           [-checkpoint-records N]
//	           [-snapshot-encoding binary|json] [-wal-encoding binary|json]
//	           [-work-stealing=false] [-fault-drop P] [-fault-noise P]
//	           [-fault-seed N] [-fault-outages node:from:to,...]
//
// A minimal session against a running daemon:
//
//	anonradiod -listen 127.0.0.1:8080 &
//	curl -s 127.0.0.1:8080/healthz
//	jq -n --rawfile c cfg.txt '{key:"demo", config:$c}' |
//	    curl -s -X POST --data-binary @- 127.0.0.1:8080/v1/register
//	curl -s -X POST -d '{"key":"demo"}' 127.0.0.1:8080/v1/elect
//
// See docs/SERVER.md for the full API reference and operations guide.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"anonradio/internal/radio"
	"anonradio/internal/server"
	"anonradio/internal/service"
	"anonradio/internal/wal"
)

// buildFaultPlan assembles the -fault-* flags into a radio fault plan; a
// nil plan (all flags zero) is the clean medium.
func buildFaultPlan(seed uint64, drop, noise float64, outages string) (*radio.FaultPlan, error) {
	if drop < 0 || drop > 1 {
		return nil, fmt.Errorf("-fault-drop %g outside [0, 1]", drop)
	}
	if noise < 0 || noise > 1 {
		return nil, fmt.Errorf("-fault-noise %g outside [0, 1]", noise)
	}
	plan := &radio.FaultPlan{Seed: seed, Drop: drop, Noise: noise}
	if outages != "" {
		for _, spec := range strings.Split(outages, ",") {
			parts := strings.Split(spec, ":")
			if len(parts) != 3 {
				return nil, fmt.Errorf("-fault-outages: %q is not a node:from:to triple", spec)
			}
			var o radio.Outage
			var err error
			if o.Node, err = strconv.Atoi(parts[0]); err != nil {
				return nil, fmt.Errorf("-fault-outages: node in %q: %v", spec, err)
			}
			if o.From, err = strconv.Atoi(parts[1]); err != nil {
				return nil, fmt.Errorf("-fault-outages: from in %q: %v", spec, err)
			}
			if o.To, err = strconv.Atoi(parts[2]); err != nil {
				return nil, fmt.Errorf("-fault-outages: to in %q: %v", spec, err)
			}
			if o.Node < 0 || o.From < 0 || o.To <= o.From {
				return nil, fmt.Errorf("-fault-outages: %q needs node >= 0, from >= 0, to > from", spec)
			}
			plan.Outages = append(plan.Outages, o)
		}
	}
	if plan.Empty() {
		return nil, nil
	}
	return plan, nil
}

func main() { os.Exit(run()) }

// run is main with an exit code: the registry teardown must happen before
// the process exits even on degraded paths, which os.Exit-in-main would
// skip past.
func run() int {
	var (
		listen          = flag.String("listen", ":8080", "listen address")
		shards          = flag.Int("shards", 0, "worker-owned shards (0 = GOMAXPROCS)")
		queueDepth      = flag.Int("queue-depth", 0, "per-shard request queue depth (0 = default)")
		buildersN       = flag.Int("builders", 0, "admission builder goroutines; builds run here, off the serve path (0 = GOMAXPROCS)")
		admissionQueue  = flag.Int("admission-queue", 0, "bounded admission queue ahead of the builders; a full queue answers 429 (0 = default 256)")
		trust           = flag.Bool("trust-artifacts", false, "trust compiled artifacts registered over HTTP: a verifying phase-table digest skips the recompile validation (enable only when every client is your own pipeline)")
		snapshotDir     = flag.String("snapshot-dir", "", "snapshot directory for -restore-on-boot / -snapshot-on-shutdown")
		restoreOnBoot   = flag.Bool("restore-on-boot", false, "restore -snapshot-dir before the listener opens (missing manifest is not an error; the daemon starts empty)")
		snapOnShutdown  = flag.Bool("snapshot-on-shutdown", false, "snapshot the registry into -snapshot-dir after the graceful shutdown")
		shutdownTimeout = flag.Duration("shutdown-timeout", 10*time.Second, "how long a graceful shutdown may wait for in-flight requests")
		maxBatch        = flag.Int("max-batch", 0, "largest accepted /v1/elect/batch key count (0 = default 8192)")
		walDir          = flag.String("wal-dir", "", "admission journal directory; enables durability (replay on boot, journal on admit/evict, background checkpoints)")
		walSync         = flag.String("wal-sync", "always", "journal fsync policy: always (fsync before acknowledging), batch (group fsync on a short timer), off (OS decides)")
		checkpointEvery = flag.Duration("checkpoint-every", time.Minute, "background checkpoint interval: snapshot the registry and truncate the journal (0 disables the timer)")
		checkpointRecs  = flag.Int64("checkpoint-records", 0, "checkpoint once this many journal records accumulate since the last one (0 = automatic pacing proportional to the registry size; negative disables the count trigger)")
		snapshotEnc     = flag.String("snapshot-encoding", "binary", "artifact encoding of snapshots and checkpoints this daemon writes: binary (compact wire frames) or json (elect -compiled compatible); restore auto-detects either")
		walEnc          = flag.String("wal-encoding", "binary", "journal record encoding this daemon writes: binary or json; replay auto-detects either, so mixed-era journals boot unchanged")
		workStealing    = flag.Bool("work-stealing", true, "let idle shard workers steal queued read-only elections from loaded siblings (hot-key relief); mutations always stay on the owning shard")
		faultDrop       = flag.Float64("fault-drop", 0, "per-delivery message-drop probability injected into every served election, in [0,1] (robustness experiments; 0 = the paper's clean medium)")
		faultNoise      = flag.Float64("fault-noise", 0, "per-node-per-round spurious-collision probability injected into every served election, in [0,1]")
		faultSeed       = flag.Uint64("fault-seed", 0, "seed keying the injected faults; the same seed replays identical faults")
		faultOutages    = flag.String("fault-outages", "", "per-node radio-off windows injected into every served election, as comma-separated node:from:to global-round triples (e.g. 0:2:5,3:0:10)")
	)
	flag.Parse()
	log.SetPrefix("anonradiod: ")
	log.SetFlags(log.LstdFlags | log.Lmsgprefix)

	if (*restoreOnBoot || *snapOnShutdown) && *snapshotDir == "" {
		log.Print("-restore-on-boot and -snapshot-on-shutdown require -snapshot-dir")
		return 2
	}

	snapEncoding, err := service.ParseEncoding(*snapshotEnc)
	if err != nil {
		log.Printf("-snapshot-encoding: %v", err)
		return 2
	}
	walEncoding, err := service.ParseEncoding(*walEnc)
	if err != nil {
		log.Printf("-wal-encoding: %v", err)
		return 2
	}
	fault, err := buildFaultPlan(*faultSeed, *faultDrop, *faultNoise, *faultOutages)
	if err != nil {
		log.Printf("fault flags: %v", err)
		return 2
	}
	opts := service.Options{
		Shards:               *shards,
		QueueDepth:           *queueDepth,
		Builders:             *buildersN,
		AdmissionQueue:       *admissionQueue,
		TrustCompiledDigests: *trust,
		SnapshotEncoding:     snapEncoding,
		WorkStealing:         service.Bool(*workStealing),
		Fault:                fault,
	}
	if fault != nil {
		log.Printf("serving over a faulted medium: seed=%d drop=%g noise=%g outages=%d (every election runs the fault plan)",
			fault.Seed, fault.Drop, fault.Noise, len(fault.Outages))
	}
	var reg *service.Registry
	if *walDir != "" {
		policy, err := wal.ParseSyncPolicy(*walSync)
		if err != nil {
			log.Printf("-wal-sync: %v", err)
			return 2
		}
		start := time.Now()
		opts.WAL = service.WALOptions{Dir: *walDir, Sync: policy, CheckpointEvery: *checkpointEvery, CheckpointRecords: *checkpointRecs, Encoding: walEncoding}
		var report *service.RecoveryReport
		reg, report, err = service.Open(opts)
		if err != nil {
			log.Printf("opening durable registry at %s: %v", *walDir, err)
			return 1
		}
		log.Printf("recovered %s in %s: checkpoint %d entries, journal %d admits / %d evicts / %d compacted across %d segments (sync=%s, checkpoint every %s, wal-encoding=%s, snapshot-encoding=%s)",
			*walDir, time.Since(start).Round(time.Millisecond),
			report.Checkpoint.Entries, report.Admits, report.Evicts, report.Compacted,
			report.Journal.Segments, policy, *checkpointEvery, walEncoding, snapEncoding)
		if !report.Clean() {
			for _, f := range report.Journal.Faults {
				log.Printf("recovery: journal damage in %s at offset %d: %s", f.Segment, f.Offset, f.Reason)
			}
			for _, s := range report.Checkpoint.Skipped {
				log.Printf("recovery: checkpoint entry %q skipped: %s", s.Key, s.Reason)
			}
			for _, s := range report.Skipped {
				log.Printf("recovery: journal record %d (%s %q) skipped: %s", s.Index, s.Op, s.Key, s.Reason)
			}
			log.Printf("recovery: booted degraded — %d journal faults, %d checkpoint entries and %d records skipped (acknowledged-but-damaged state is lost; see docs/SERVER.md#durability)",
				len(report.Journal.Faults), len(report.Checkpoint.Skipped), len(report.Skipped))
		}
	} else {
		reg = service.New(opts)
	}
	defer reg.Close()

	if *restoreOnBoot {
		start := time.Now()
		report, err := server.LoadSnapshot(reg, *snapshotDir)
		switch {
		case err != nil && errors.Is(err, os.ErrNotExist):
			log.Printf("no snapshot at %s; starting empty", *snapshotDir)
		case err != nil:
			log.Printf("restoring %s: %v", *snapshotDir, err)
			return 1
		default:
			log.Printf("restored %d configurations from %s in %s (%d digest-trusted, %d revalidated)",
				report.Entries, *snapshotDir, time.Since(start).Round(time.Millisecond), report.Trusted, report.Revalidated)
			for _, s := range report.Skipped {
				log.Printf("restore: entry %q skipped: %s", s.Key, s.Reason)
			}
		}
	}

	srv := server.New(reg, server.Options{MaxBatchKeys: *maxBatch})
	done := make(chan error, 1)
	go func() { done <- srv.ListenAndServe(*listen) }()
	ast := reg.AdmissionStats()
	log.Printf("serving on %s (%d shards, %d builders, admission queue %d)",
		*listen, reg.Shards(), ast.Builders, ast.QueueCapacity)

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigs:
		log.Printf("received %s; draining", sig)
		ctx, cancel := context.WithTimeout(context.Background(), *shutdownTimeout)
		err := srv.Shutdown(ctx)
		cancel()
		if err != nil {
			log.Printf("shutdown: %v (continuing)", err)
		}
		if err := <-done; err != nil && err != http.ErrServerClosed {
			log.Printf("serve: %v", err)
		}
	case err := <-done:
		// The listener died on its own (port in use, ...): nothing to drain.
		log.Printf("serve: %v", err)
		return 1
	}

	// The drain already happened, so a failed shutdown snapshot must not
	// abort the teardown: log it, finish the lifecycle (final checkpoint,
	// registry close, stats), and report the failure in the exit code. A
	// durable daemon already has the state journaled anyway.
	exit := 0
	if *snapOnShutdown {
		start := time.Now()
		manifest, err := reg.Snapshot(*snapshotDir)
		if err != nil {
			log.Printf("snapshotting to %s failed: %v (registry state is NOT in %s; exiting nonzero after teardown)",
				*snapshotDir, err, *snapshotDir)
			exit = 1
		} else {
			log.Printf("snapshotted %d configurations to %s in %s",
				len(manifest.Entries), *snapshotDir, time.Since(start).Round(time.Millisecond))
		}
	}
	if *walDir != "" {
		// One final checkpoint so the next boot replays an empty (or tiny)
		// journal; failure is non-fatal for the same reason as above — the
		// journal alone reconstructs the state.
		if err := reg.Checkpoint(); err != nil {
			log.Printf("final checkpoint: %v (next boot replays the journal instead)", err)
		}
	}
	stats, err := reg.Stats()
	if err != nil {
		log.Printf("final stats unavailable: %v; bye", err)
		return exit
	}
	total := service.Totals(stats)
	log.Printf("served %d elections (%d failures); bye", total.Elections, total.Failures)
	return exit
}
