// Command anonradiod is the election server daemon: it serves the sharded
// election service of internal/service over the HTTP/JSON API of
// internal/server (register, elect, batch elect, evict, stats, health).
//
// The daemon owns the registry lifecycle around the network layer:
//
//   - with -restore-on-boot it re-admits a snapshot directory through the
//     digest-trusted artifact fast path before the listener opens, so a
//     cold restart skips reclassifying and recompiling the fleet;
//   - on SIGINT/SIGTERM it shuts the listener down gracefully (in-flight
//     requests complete, bounded by -shutdown-timeout) and, with
//     -snapshot-on-shutdown, persists the then-quiescent registry.
//
// Usage:
//
//	anonradiod [-listen :8080] [-shards N] [-queue-depth N] [-builders N]
//	           [-admission-queue N] [-trust-artifacts] [-snapshot-dir DIR]
//	           [-restore-on-boot] [-snapshot-on-shutdown]
//	           [-shutdown-timeout 10s]
//
// A minimal session against a running daemon:
//
//	anonradiod -listen 127.0.0.1:8080 &
//	curl -s 127.0.0.1:8080/healthz
//	jq -n --rawfile c cfg.txt '{key:"demo", config:$c}' |
//	    curl -s -X POST --data-binary @- 127.0.0.1:8080/v1/register
//	curl -s -X POST -d '{"key":"demo"}' 127.0.0.1:8080/v1/elect
//
// See docs/SERVER.md for the full API reference and operations guide.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"anonradio/internal/server"
	"anonradio/internal/service"
)

func main() {
	var (
		listen          = flag.String("listen", ":8080", "listen address")
		shards          = flag.Int("shards", 0, "worker-owned shards (0 = GOMAXPROCS)")
		queueDepth      = flag.Int("queue-depth", 0, "per-shard request queue depth (0 = default)")
		buildersN       = flag.Int("builders", 0, "admission builder goroutines; builds run here, off the serve path (0 = GOMAXPROCS)")
		admissionQueue  = flag.Int("admission-queue", 0, "bounded admission queue ahead of the builders; a full queue answers 429 (0 = default 256)")
		trust           = flag.Bool("trust-artifacts", false, "trust compiled artifacts registered over HTTP: a verifying phase-table digest skips the recompile validation (enable only when every client is your own pipeline)")
		snapshotDir     = flag.String("snapshot-dir", "", "snapshot directory for -restore-on-boot / -snapshot-on-shutdown")
		restoreOnBoot   = flag.Bool("restore-on-boot", false, "restore -snapshot-dir before the listener opens (missing manifest is not an error; the daemon starts empty)")
		snapOnShutdown  = flag.Bool("snapshot-on-shutdown", false, "snapshot the registry into -snapshot-dir after the graceful shutdown")
		shutdownTimeout = flag.Duration("shutdown-timeout", 10*time.Second, "how long a graceful shutdown may wait for in-flight requests")
		maxBatch        = flag.Int("max-batch", 0, "largest accepted /v1/elect/batch key count (0 = default 8192)")
	)
	flag.Parse()
	log.SetPrefix("anonradiod: ")
	log.SetFlags(log.LstdFlags | log.Lmsgprefix)

	if (*restoreOnBoot || *snapOnShutdown) && *snapshotDir == "" {
		log.Fatal("-restore-on-boot and -snapshot-on-shutdown require -snapshot-dir")
	}

	reg := service.New(service.Options{
		Shards:               *shards,
		QueueDepth:           *queueDepth,
		Builders:             *buildersN,
		AdmissionQueue:       *admissionQueue,
		TrustCompiledDigests: *trust,
	})
	defer reg.Close()

	if *restoreOnBoot {
		start := time.Now()
		report, err := server.LoadSnapshot(reg, *snapshotDir)
		switch {
		case err != nil && errors.Is(err, os.ErrNotExist):
			log.Printf("no snapshot at %s; starting empty", *snapshotDir)
		case err != nil:
			log.Fatalf("restoring %s: %v", *snapshotDir, err)
		default:
			log.Printf("restored %d configurations from %s in %s (%d digest-trusted, %d revalidated)",
				report.Entries, *snapshotDir, time.Since(start).Round(time.Millisecond), report.Trusted, report.Revalidated)
		}
	}

	srv := server.New(reg, server.Options{MaxBatchKeys: *maxBatch})
	done := make(chan error, 1)
	go func() { done <- srv.ListenAndServe(*listen) }()
	ast := reg.AdmissionStats()
	log.Printf("serving on %s (%d shards, %d builders, admission queue %d)",
		*listen, reg.Shards(), ast.Builders, ast.QueueCapacity)

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigs:
		log.Printf("received %s; draining", sig)
		ctx, cancel := context.WithTimeout(context.Background(), *shutdownTimeout)
		err := srv.Shutdown(ctx)
		cancel()
		if err != nil {
			log.Printf("shutdown: %v (continuing)", err)
		}
		if err := <-done; err != nil && err != http.ErrServerClosed {
			log.Printf("serve: %v", err)
		}
	case err := <-done:
		// The listener died on its own (port in use, ...): nothing to drain.
		log.Fatalf("serve: %v", err)
	}

	if *snapOnShutdown {
		start := time.Now()
		manifest, err := reg.Snapshot(*snapshotDir)
		if err != nil {
			log.Fatalf("snapshotting to %s: %v", *snapshotDir, err)
		}
		log.Printf("snapshotted %d configurations to %s in %s",
			len(manifest.Entries), *snapshotDir, time.Since(start).Round(time.Millisecond))
	}
	stats, err := reg.Stats()
	if err != nil {
		log.Printf("final stats unavailable: %v; bye", err)
		return
	}
	total := service.Totals(stats)
	log.Printf("served %d elections (%d failures); bye", total.Elections, total.Failures)
}
