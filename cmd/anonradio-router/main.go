// Command anonradio-router is the fleet front door: a thin HTTP daemon
// that exposes the same /v1/* API a single anonradiod serves, over a set
// of nodes, with per-key routing by rendezvous hashing (internal/fleet).
//
// The router holds no election state. It decides which node owns each key
// (a pure function of the node list, so every router replica routes
// identically), forwards the request in the client's own encoding (JSON or
// the binary wire protocol), splits batch elections per owning node and
// reassembles the outcomes in submission order, and aggregates /v1/stats
// across the fleet. Registrations refused with 429 by a node's admission
// queue are retried per -busy-retries, honoring the node's Retry-After.
//
// A background probe loop polls every node's /healthz; a node that misses
// -probe-failures consecutive probes is dropped from the ring and its keys
// are re-registered from the router's configuration cache onto the
// surviving nodes. Keys owned by survivors keep their placement (the
// rendezvous property) and their elections continue bit-identically.
//
// Usage:
//
//	anonradio-router -nodes http://h1:8080,http://h2:8080,http://h3:8080
//	                 [-listen :8090] [-binary] [-busy-retries 3]
//	                 [-probe-interval 1s] [-probe-failures 3]
//	                 [-max-batch 8192] [-shutdown-timeout 10s]
//
// See docs/SERVER.md for the fleet section of the API reference.
package main

import (
	"context"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"anonradio/internal/fleet"
)

func main() { os.Exit(run()) }

func run() int {
	var (
		listen          = flag.String("listen", ":8090", "listen address")
		nodes           = flag.String("nodes", "", "comma-separated node base URLs (e.g. http://h1:8080,http://h2:8080); required")
		binary          = flag.Bool("binary", false, "speak the binary wire encoding to the nodes for register/elect/batch (front-door clients still negotiate their own encoding per request)")
		busyRetries     = flag.Int("busy-retries", 3, "extra attempts for requests a node refuses with 429 (admission queue full), each honoring the node's Retry-After")
		maxRetryAfter   = flag.Duration("max-retry-after", 2*time.Second, "cap on the per-attempt Retry-After sleep")
		probeInterval   = flag.Duration("probe-interval", time.Second, "node /healthz polling cadence")
		probeFailures   = flag.Int("probe-failures", 3, "consecutive probe failures before a node is declared lost and its keys are re-registered onto the survivors")
		maxBatch        = flag.Int("max-batch", 0, "largest accepted /v1/elect/batch key count (0 = default 8192)")
		shutdownTimeout = flag.Duration("shutdown-timeout", 10*time.Second, "how long a graceful shutdown may wait for in-flight requests")
	)
	flag.Parse()
	log.SetPrefix("anonradio-router: ")
	log.SetFlags(log.LstdFlags | log.Lmsgprefix)

	var nodeList []string
	for _, n := range strings.Split(*nodes, ",") {
		if n = strings.TrimSpace(n); n != "" {
			nodeList = append(nodeList, n)
		}
	}
	if len(nodeList) == 0 {
		log.Print("-nodes is required (comma-separated node base URLs)")
		return 2
	}

	f, err := fleet.New(nodeList, fleet.ClientOptions{
		Binary:        *binary,
		BusyRetries:   *busyRetries,
		MaxRetryAfter: *maxRetryAfter,
	})
	if err != nil {
		log.Printf("building fleet: %v", err)
		return 2
	}
	rt := fleet.NewRouter(f, fleet.RouterOptions{
		ProbeInterval: *probeInterval,
		ProbeFailures: *probeFailures,
		MaxBatchKeys:  *maxBatch,
	})
	rt.Start()
	defer rt.Stop()

	srv := &http.Server{Addr: *listen, Handler: rt.Handler(), ReadHeaderTimeout: 5 * time.Second}
	done := make(chan error, 1)
	go func() { done <- srv.ListenAndServe() }()
	log.Printf("routing %d nodes on %s (binary=%v, probe every %s, drop after %d misses)",
		len(nodeList), *listen, *binary, *probeInterval, *probeFailures)

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigs:
		log.Printf("received %s; draining", sig)
		ctx, cancel := context.WithTimeout(context.Background(), *shutdownTimeout)
		err := srv.Shutdown(ctx)
		cancel()
		if err != nil {
			log.Printf("shutdown: %v (continuing)", err)
		}
		if err := <-done; err != nil && err != http.ErrServerClosed {
			log.Printf("serve: %v", err)
		}
	case err := <-done:
		log.Printf("serve: %v", err)
		return 1
	}
	log.Print("bye")
	return 0
}
