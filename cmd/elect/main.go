// Command elect builds the dedicated canonical leader election algorithm for
// a feasible configuration, executes it on the radio-network simulator, and
// prints the elected leader (optionally with the full round-by-round trace).
//
// With -serve N it switches to the steady-state service mode: the
// configuration is admitted into a sharded election service and N elections
// are served in batches, printing throughput and per-shard statistics.
//
// Usage:
//
//	elect -config cfg.txt [-engine sequential|parallel|concurrent|goroutine-per-node] [-trace]
//	elect -config cfg.txt -serve 100000 [-shards 4] [-batch 64] [-compiled alg.json] [-trust-artifact]
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"time"

	"anonradio"
)

func main() {
	var (
		path     = flag.String("config", "", "configuration file (default: read standard input)")
		engine   = flag.String("engine", "sequential", "simulation engine: "+anonradio.EngineList())
		trace    = flag.Bool("trace", false, "print the round-by-round transcript of the election")
		compiled = flag.String("compiled", "", "run a pre-compiled algorithm (JSON from cmd/compile) instead of re-deriving it")
		serve    = flag.Int("serve", 0, "service mode: admit the configuration into a sharded election service and serve N elections")
		shards   = flag.Int("shards", 0, "shard workers for -serve (0 = GOMAXPROCS)")
		batch    = flag.Int("batch", 64, "submission batch size for -serve")
		trust    = flag.Bool("trust-artifact", false, "trust -compiled artifacts from your own pipeline: a verifying phase-table digest skips the recompile validation")
	)
	flag.Parse()

	// Validate the engine up front so a typo fails with the list of valid
	// engines instead of surfacing mid-run after the classification work.
	if err := anonradio.ValidateEngine(anonradio.EngineKind(*engine)); err != nil {
		fmt.Fprintln(os.Stderr, "elect:", err)
		os.Exit(2)
	}
	if *trust && *compiled == "" {
		fmt.Fprintln(os.Stderr, "elect: -trust-artifact only applies to -compiled artifacts (a freshly built algorithm has nothing to trust)")
		os.Exit(2)
	}

	cfg, err := readConfig(*path)
	if err != nil {
		fatal(err)
	}

	if *serve > 0 {
		// The service serves on the pooled sequential path (all engines are
		// bit-identical; the service's worker-ownership replaces per-run
		// engine scheduling) and keeps no traces; reject flags that would
		// otherwise be silently ignored.
		if *trace {
			fmt.Fprintln(os.Stderr, "elect: -trace is not available in -serve mode (the service keeps no per-round transcripts)")
			os.Exit(2)
		}
		if *engine != "sequential" {
			fmt.Fprintf(os.Stderr, "elect: -engine %s is not available in -serve mode (the service serves on the pooled sequential path; outcomes are engine-independent)\n", *engine)
			os.Exit(2)
		}
		if err := runServe(cfg, *compiled, *serve, *shards, *batch, *trust); err != nil {
			if errors.Is(err, anonradio.ErrInfeasible) {
				fmt.Printf("configuration: %s\n", cfg)
				fmt.Println("feasible:      false (no leader election algorithm exists)")
				os.Exit(2)
			}
			fatal(err)
		}
		return
	}

	var (
		out       *anonradio.ElectionOutcome
		dedicated *anonradio.Dedicated
	)
	if *compiled != "" {
		out, dedicated, err = electCompiled(*compiled, cfg, anonradio.EngineKind(*engine), *trust)
	} else {
		out, dedicated, err = anonradio.ElectWith(cfg, anonradio.EngineKind(*engine))
	}
	if err != nil {
		if errors.Is(err, anonradio.ErrInfeasible) {
			fmt.Printf("configuration: %s\n", cfg)
			fmt.Println("feasible:      false (no leader election algorithm exists)")
			os.Exit(2)
		}
		fatal(err)
	}

	fmt.Printf("configuration:   %s\n", cfg)
	fmt.Printf("leader:          node %d\n", out.Leader())
	fmt.Printf("global rounds:   %d (bound %d)\n", out.Rounds, dedicated.RoundBound)
	fmt.Printf("local rounds:    %d per node\n", dedicated.LocalRounds)
	fmt.Printf("phases:          %d\n", dedicated.DRIP.Phases())

	if *trace {
		res, err := anonradio.Simulate(dedicated, anonradio.EngineKind(*engine), true)
		if err != nil {
			fatal(err)
		}
		fmt.Println("\ntranscript:")
		fmt.Print(res.Trace.String())
	}
}

// runServe admits cfg into a sharded election service (building on the
// shard, or loading a compiled artifact when one is given) and serves
// `count` elections in batches of `batchSize`, printing throughput and
// per-shard statistics.
func runServe(cfg *anonradio.Config, compiledPath string, count, shards, batchSize int, trust bool) error {
	if batchSize < 1 {
		batchSize = 1
	}
	svc := anonradio.NewService(anonradio.ServiceOptions{Shards: shards, TrustCompiledDigests: trust})
	defer svc.Close()

	const key = "config"
	if compiledPath != "" {
		c, err := readCompiled(compiledPath)
		if err != nil {
			return err
		}
		if err := svc.RegisterCompiled(key, c, cfg); err != nil {
			return err
		}
	} else if err := svc.Register(key, cfg); err != nil {
		return err
	}

	keys := make([]string, batchSize)
	for i := range keys {
		keys[i] = key
	}
	var outs []anonradio.ServiceOutcome
	leader, rounds := -1, 0
	start := time.Now()
	for done := 0; done < count; {
		chunk := batchSize
		if rest := count - done; rest < chunk {
			chunk = rest
		}
		var err error
		outs, err = svc.ElectBatch(keys[:chunk], outs)
		if err != nil {
			return err
		}
		leader, rounds = outs[0].Leader, outs[0].Rounds
		done += chunk
	}
	elapsed := time.Since(start)

	fmt.Printf("configuration:   %s\n", cfg)
	fmt.Printf("leader:          node %d\n", leader)
	fmt.Printf("global rounds:   %d per election\n", rounds)
	fmt.Printf("elections:       %d in %s (%.0f elections/sec, batch %d)\n",
		count, elapsed.Round(time.Millisecond), float64(count)/elapsed.Seconds(), batchSize)
	stats, err := svc.Stats()
	if err != nil {
		return err
	}
	for _, s := range stats {
		fmt.Printf("shard %d:         %d configs, %d elections, %d failures\n",
			s.Shard, s.Configs, s.Elections, s.Failures)
	}
	return nil
}

// electCompiled loads a compiled algorithm artifact (fully validated, or
// via the digest fast path with -trust-artifact) and runs it on cfg.
func electCompiled(path string, cfg *anonradio.Config, engine anonradio.EngineKind, trust bool) (*anonradio.ElectionOutcome, *anonradio.Dedicated, error) {
	compiled, err := readCompiled(path)
	if err != nil {
		return nil, nil, err
	}
	if trust {
		d, err := anonradio.LoadElectionTrusted(compiled, cfg)
		if err != nil {
			return nil, nil, err
		}
		out, err := anonradio.ElectDedicated(d, engine)
		if err != nil {
			return nil, nil, err
		}
		return out, d, nil
	}
	return anonradio.ElectCompiled(compiled, cfg, engine)
}

// readCompiled reads and decodes a compiled algorithm artifact.
func readCompiled(path string) (*anonradio.CompiledElection, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return anonradio.ParseCompiledElection(data)
}

func readConfig(path string) (*anonradio.Config, error) {
	if path == "" {
		return anonradio.ParseConfig(os.Stdin)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return anonradio.ParseConfig(f)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "elect:", err)
	os.Exit(1)
}
