// Command elect builds the dedicated canonical leader election algorithm for
// a feasible configuration, executes it on the radio-network simulator, and
// prints the elected leader (optionally with the full round-by-round trace).
//
// Usage:
//
//	elect -config cfg.txt [-engine sequential|parallel|concurrent|goroutine-per-node] [-trace]
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"

	"anonradio"
)

func main() {
	var (
		path     = flag.String("config", "", "configuration file (default: read standard input)")
		engine   = flag.String("engine", "sequential", "simulation engine: "+anonradio.EngineList())
		trace    = flag.Bool("trace", false, "print the round-by-round transcript of the election")
		compiled = flag.String("compiled", "", "run a pre-compiled algorithm (JSON from cmd/compile) instead of re-deriving it")
	)
	flag.Parse()

	// Validate the engine up front so a typo fails with the list of valid
	// engines instead of surfacing mid-run after the classification work.
	if err := anonradio.ValidateEngine(anonradio.EngineKind(*engine)); err != nil {
		fmt.Fprintln(os.Stderr, "elect:", err)
		os.Exit(2)
	}

	cfg, err := readConfig(*path)
	if err != nil {
		fatal(err)
	}

	var (
		out       *anonradio.ElectionOutcome
		dedicated *anonradio.Dedicated
	)
	if *compiled != "" {
		out, dedicated, err = electCompiled(*compiled, cfg, anonradio.EngineKind(*engine))
	} else {
		out, dedicated, err = anonradio.ElectWith(cfg, anonradio.EngineKind(*engine))
	}
	if err != nil {
		if errors.Is(err, anonradio.ErrInfeasible) {
			fmt.Printf("configuration: %s\n", cfg)
			fmt.Println("feasible:      false (no leader election algorithm exists)")
			os.Exit(2)
		}
		fatal(err)
	}

	fmt.Printf("configuration:   %s\n", cfg)
	fmt.Printf("leader:          node %d\n", out.Leader())
	fmt.Printf("global rounds:   %d (bound %d)\n", out.Rounds, dedicated.RoundBound)
	fmt.Printf("local rounds:    %d per node\n", dedicated.LocalRounds)
	fmt.Printf("phases:          %d\n", dedicated.DRIP.Phases())

	if *trace {
		res, err := anonradio.Simulate(dedicated, anonradio.EngineKind(*engine), true)
		if err != nil {
			fatal(err)
		}
		fmt.Println("\ntranscript:")
		fmt.Print(res.Trace.String())
	}
}

// electCompiled loads a compiled algorithm artifact and runs it on cfg.
func electCompiled(path string, cfg *anonradio.Config, engine anonradio.EngineKind) (*anonradio.ElectionOutcome, *anonradio.Dedicated, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	compiled, err := anonradio.ParseCompiledElection(data)
	if err != nil {
		return nil, nil, err
	}
	return anonradio.ElectCompiled(compiled, cfg, engine)
}

func readConfig(path string) (*anonradio.Config, error) {
	if path == "" {
		return anonradio.ParseConfig(os.Stdin)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return anonradio.ParseConfig(f)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "elect:", err)
	os.Exit(1)
}
