// Command inspect gives a complete picture of a configuration: the
// classifier's verdict and partition evolution, the structure of the
// canonical protocol, the execution metrics of the election, and a per-node
// summary of what each node experienced.
//
// Usage:
//
//	inspect -config cfg.txt [-engine sequential|concurrent]
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"

	"anonradio"
)

func main() {
	var (
		path   = flag.String("config", "", "configuration file (default: read standard input)")
		engine = flag.String("engine", "sequential", "simulation engine: sequential or concurrent")
	)
	flag.Parse()

	cfg, err := readConfig(*path)
	if err != nil {
		fatal(err)
	}
	fmt.Println("== configuration ==")
	fmt.Print(cfg.Describe())

	report, err := anonradio.Classify(cfg)
	if err != nil {
		fatal(err)
	}
	fmt.Println("\n== classifier ==")
	fmt.Print(report.Summary())

	if !report.Feasible() {
		fmt.Println("\nconfiguration is infeasible: no leader election algorithm exists")
		os.Exit(2)
	}

	dedicated, err := anonradio.BuildElection(cfg)
	if err != nil {
		if errors.Is(err, anonradio.ErrInfeasible) {
			os.Exit(2)
		}
		fatal(err)
	}
	fmt.Println("\n== dedicated algorithm ==")
	fmt.Printf("phases:            %d\n", dedicated.DRIP.Phases())
	fmt.Printf("local rounds:      %d\n", dedicated.LocalRounds)
	fmt.Printf("round bound:       %d\n", dedicated.RoundBound)
	fmt.Printf("designated leader: node %d\n", dedicated.ExpectedLeader)

	res, err := anonradio.Simulate(dedicated, anonradio.EngineKind(*engine), true)
	if err != nil {
		fatal(err)
	}
	metrics, err := anonradio.ComputeMetrics(res)
	if err != nil {
		fatal(err)
	}
	fmt.Println("\n== execution metrics ==")
	fmt.Println(metrics.String())

	fmt.Println("\n== per-node summary ==")
	for v := 0; v < cfg.N(); v++ {
		h := res.Histories[v]
		fmt.Printf("node %3d: wake=%-4d forced=%-5v tx=%-3d heard=%-3d noise=%-3d done(local)=%d\n",
			v, res.WakeRound[v], res.Forced[v], metrics.PerNodeTransmissions[v],
			countMessages(h), countNoise(h), res.DoneLocal[v])
	}

	timeline, err := anonradio.BuildTimeline(res)
	if err != nil {
		fatal(err)
	}
	fmt.Println("\n== timeline ==")
	fmt.Print(timeline.String())

	fmt.Println("\n== transcript ==")
	fmt.Print(res.Trace.String())
}

func countMessages(h anonradio.History) int { return h.CountKind(anonradio.HistoryMessage) }
func countNoise(h anonradio.History) int    { return h.CountKind(anonradio.HistoryNoise) }

func readConfig(path string) (*anonradio.Config, error) {
	if path == "" {
		return anonradio.ParseConfig(os.Stdin)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return anonradio.ParseConfig(f)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "inspect:", err)
	os.Exit(1)
}
