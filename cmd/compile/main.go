// Command compile derives the dedicated canonical leader election algorithm
// for a feasible configuration and writes it to a JSON artifact. The
// artifact contains exactly what the paper says is installed on the
// anonymous nodes: the span σ, the hard-coded lists L_1..L_jterm of the
// canonical DRIP, and the designated leader's history for the decision
// function. The artifact can later be executed with `elect -compiled`.
//
// Usage:
//
//	compile -config cfg.txt -o algorithm.json
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"

	"anonradio"
)

func main() {
	var (
		path = flag.String("config", "", "configuration file (default: read standard input)")
		out  = flag.String("o", "", "output file for the compiled algorithm (default: standard output)")
	)
	flag.Parse()

	cfg, err := readConfig(*path)
	if err != nil {
		fatal(err)
	}

	dedicated, err := anonradio.BuildElection(cfg)
	if err != nil {
		if errors.Is(err, anonradio.ErrInfeasible) {
			fmt.Fprintf(os.Stderr, "compile: %s is infeasible; nothing to compile\n", cfg)
			os.Exit(2)
		}
		fatal(err)
	}

	compiled := anonradio.CompileElection(dedicated)
	data, err := json.MarshalIndent(compiled, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')

	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "compile: wrote dedicated algorithm for %s (leader %d, %d phases, bound %d rounds) to %s\n",
		cfg, dedicated.ExpectedLeader, dedicated.DRIP.Phases(), dedicated.RoundBound, *out)
}

func readConfig(path string) (*anonradio.Config, error) {
	if path == "" {
		return anonradio.ParseConfig(os.Stdin)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return anonradio.ParseConfig(f)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "compile:", err)
	os.Exit(1)
}
