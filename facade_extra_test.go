package anonradio

import (
	"encoding/json"
	"strings"
	"testing"
)

// These tests cover the facade functions added on top of the core pipeline:
// compiled algorithms, execution metrics, history aliases and the fast
// classifier re-export.

func TestCompileAndLoadElectionFacade(t *testing.T) {
	cfg := LineFamilyG(2)
	_, dedicated, err := Elect(cfg)
	if err != nil {
		t.Fatalf("%v", err)
	}
	compiled := CompileElection(dedicated)
	if compiled.ConfigName != "G_2" || compiled.ExpectedLeader != dedicated.ExpectedLeader {
		t.Fatalf("compiled metadata wrong: %+v", compiled)
	}

	data, err := json.Marshal(compiled)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	parsed, err := ParseCompiledElection(data)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	out, loaded, err := ElectCompiled(parsed, cfg, SequentialEngine)
	if err != nil {
		t.Fatalf("elect compiled: %v", err)
	}
	if out.Leader() != dedicated.ExpectedLeader || loaded.RoundBound != dedicated.RoundBound {
		t.Fatalf("compiled election diverged: leader %d vs %d", out.Leader(), dedicated.ExpectedLeader)
	}
	if _, _, err := ElectCompiled(parsed, cfg, "bogus"); err == nil {
		t.Fatalf("unknown engine should error")
	}
	if _, err := ParseCompiledElection([]byte("junk")); err == nil {
		t.Fatalf("junk JSON should error")
	}
	// Loading against a configuration with a different span must fail.
	if _, _, err := ElectCompiled(parsed, SpanFamilyH(7), SequentialEngine); err == nil {
		t.Fatalf("span mismatch should error")
	}
}

func TestComputeMetricsFacade(t *testing.T) {
	_, dedicated, err := Elect(SpanFamilyH(2))
	if err != nil {
		t.Fatalf("%v", err)
	}
	res, err := Simulate(dedicated, SequentialEngine, true)
	if err != nil {
		t.Fatalf("%v", err)
	}
	metrics, err := ComputeMetrics(res)
	if err != nil {
		t.Fatalf("%v", err)
	}
	// Every node transmits once per non-terminate phase (one phase for H_2).
	if metrics.Transmissions != 4 {
		t.Fatalf("expected 4 transmissions, got %+v", metrics)
	}
	if metrics.ForcedWakeups != 0 {
		t.Fatalf("the canonical DRIP is patient; no forced wake-ups expected: %+v", metrics)
	}
	if !strings.Contains(metrics.String(), "tx=4") {
		t.Fatalf("metrics string: %q", metrics.String())
	}
	// Metrics require a trace.
	untraced, err := Simulate(dedicated, SequentialEngine, false)
	if err != nil {
		t.Fatalf("%v", err)
	}
	if _, err := ComputeMetrics(untraced); err == nil {
		t.Fatalf("metrics without a trace should error")
	}
}

func TestHistoryAliases(t *testing.T) {
	_, dedicated, err := Elect(AsymmetricPair(1))
	if err != nil {
		t.Fatalf("%v", err)
	}
	res, err := Simulate(dedicated, SequentialEngine, false)
	if err != nil {
		t.Fatalf("%v", err)
	}
	var h History = res.Histories[0]
	if h.CountKind(HistorySilence) == 0 {
		t.Fatalf("history should contain silence entries")
	}
	if HistorySilence == HistoryMessage || HistoryMessage == HistoryNoise {
		t.Fatalf("history kind constants must be distinct")
	}
	var e HistoryEntry = h[0]
	if e.Kind != HistorySilence {
		t.Fatalf("first entry of a spontaneously woken node should be silence")
	}
}

func TestClassifyFastFacade(t *testing.T) {
	cfg := RandomConfig(20, 0.2, 3, 99)
	slow, err := Classify(cfg)
	if err != nil {
		t.Fatalf("%v", err)
	}
	fast, err := ClassifyFast(cfg)
	if err != nil {
		t.Fatalf("%v", err)
	}
	if slow.Feasible() != fast.Feasible() || slow.Leader != fast.Leader || slow.Iterations() != fast.Iterations() {
		t.Fatalf("fast classifier diverged: %v/%d vs %v/%d", slow.Decision, slow.Leader, fast.Decision, fast.Leader)
	}
	if _, err := ClassifyFast(nil); err == nil {
		t.Fatalf("nil configuration should error")
	}
}

func TestRunExperimentAblationIDs(t *testing.T) {
	table, err := RunExperiment("A1", true, 1)
	if err != nil {
		t.Fatalf("%v", err)
	}
	if len(table.Rows) == 0 {
		t.Fatalf("A1 produced no rows")
	}
	table, err = RunExperiment("E11", true, 1)
	if err != nil {
		t.Fatalf("%v", err)
	}
	for _, row := range table.Rows {
		if row[len(row)-1] != "0" {
			t.Fatalf("E11 reported a contradiction: %v", row)
		}
	}
}
