package anonradio

import (
	"errors"
	"strings"
	"testing"
)

func TestNewConfigValidation(t *testing.T) {
	cfg, err := NewConfig(3, [][2]int{{0, 1}, {1, 2}}, []int{0, 1, 2}, "demo")
	if err != nil {
		t.Fatalf("valid configuration rejected: %v", err)
	}
	if cfg.N() != 3 || cfg.Name != "demo" || cfg.Span() != 2 {
		t.Fatalf("configuration fields wrong: %v", cfg)
	}
	if _, err := NewConfig(3, [][2]int{{0, 5}}, []int{0, 0, 0}, ""); err == nil {
		t.Fatalf("out-of-range edge should be rejected")
	}
	if _, err := NewConfig(3, [][2]int{{1, 1}}, []int{0, 0, 0}, ""); err == nil {
		t.Fatalf("self-loop should be rejected")
	}
	if _, err := NewConfig(3, [][2]int{{0, 1}}, []int{0, 0, 0}, ""); err == nil {
		t.Fatalf("disconnected graph should be rejected")
	}
	if _, err := NewConfig(2, [][2]int{{0, 1}}, []int{0}, ""); err == nil {
		t.Fatalf("tag count mismatch should be rejected")
	}
}

func TestParseConfigRoundTrip(t *testing.T) {
	cfg := SpanFamilyH(2)
	parsed, err := ParseConfig(strings.NewReader(cfg.Marshal()))
	if err != nil {
		t.Fatalf("parse failed: %v", err)
	}
	if !parsed.Equal(cfg) {
		t.Fatalf("round trip mismatch")
	}
}

func TestRandomConfigDeterministic(t *testing.T) {
	a := RandomConfig(12, 0.3, 4, 7)
	b := RandomConfig(12, 0.3, 4, 7)
	c := RandomConfig(12, 0.3, 4, 8)
	if !a.Equal(b) {
		t.Fatalf("same seed should give the same configuration")
	}
	if a.Equal(c) {
		t.Fatalf("different seeds should give different configurations")
	}
	if err := a.Validate(); err != nil {
		t.Fatalf("random config invalid: %v", err)
	}
}

func TestClassifyAndIsFeasible(t *testing.T) {
	rep, err := Classify(SpanFamilyH(2))
	if err != nil || !rep.Feasible() {
		t.Fatalf("H_2 should classify as feasible: %v", err)
	}
	ok, err := IsFeasible(SymmetricPair())
	if err != nil || ok {
		t.Fatalf("symmetric pair should be infeasible")
	}
}

func TestElectEndToEnd(t *testing.T) {
	cfg, err := NewConfig(4, [][2]int{{0, 1}, {1, 2}, {2, 3}}, []int{2, 0, 0, 3}, "readme-demo")
	if err != nil {
		t.Fatalf("%v", err)
	}
	out, d, err := Elect(cfg)
	if err != nil {
		t.Fatalf("%v", err)
	}
	if !out.Elected() || out.Leader() != d.ExpectedLeader {
		t.Fatalf("election failed: %v", out.Leaders)
	}
	if out.Rounds > d.RoundBound {
		t.Fatalf("rounds %d above bound %d", out.Rounds, d.RoundBound)
	}
}

func TestElectWithEngines(t *testing.T) {
	cfg := LineFamilyG(2)
	seqOut, _, err := ElectWith(cfg, SequentialEngine)
	if err != nil {
		t.Fatalf("sequential: %v", err)
	}
	concOut, _, err := ElectWith(cfg, ConcurrentEngine)
	if err != nil {
		t.Fatalf("concurrent: %v", err)
	}
	if seqOut.Leader() != concOut.Leader() || seqOut.Rounds != concOut.Rounds {
		t.Fatalf("engines disagree: %v vs %v", seqOut, concOut)
	}
	if _, _, err := ElectWith(cfg, "bogus"); err == nil {
		t.Fatalf("unknown engine should error")
	}
}

func TestElectInfeasible(t *testing.T) {
	if _, _, err := Elect(SymmetricFamilyS(2)); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("expected ErrInfeasible, got %v", err)
	}
}

func TestSimulate(t *testing.T) {
	_, d, err := Elect(SpanFamilyH(1))
	if err != nil {
		t.Fatalf("%v", err)
	}
	res, err := Simulate(d, SequentialEngine, true)
	if err != nil {
		t.Fatalf("%v", err)
	}
	if len(res.Histories) != 4 || res.Trace == nil {
		t.Fatalf("simulation result incomplete")
	}
	if _, err := Simulate(d, "bogus", false); err == nil {
		t.Fatalf("unknown engine should error")
	}
}

func TestCrossCheckFeasibility(t *testing.T) {
	feasible, agree, err := CrossCheckFeasibility(LineFamilyG(2))
	if err != nil || !feasible || !agree {
		t.Fatalf("cross-check failed: %v %v %v", feasible, agree, err)
	}
	feasible, agree, err = CrossCheckFeasibility(SymmetricFamilyS(1))
	if err != nil || feasible || !agree {
		t.Fatalf("cross-check failed: %v %v %v", feasible, agree, err)
	}
}

func TestFamilies(t *testing.T) {
	if SingleNode().N() != 1 || AsymmetricPair(2).Span() != 2 {
		t.Fatalf("family re-exports broken")
	}
	if EarlyCenterStar(5, 3).MaxDegree() != 4 {
		t.Fatalf("star family broken")
	}
	if StaggeredPath(4, 2).Span() != 6 || StaggeredClique(4).N() != 4 {
		t.Fatalf("staggered families broken")
	}
}

func TestRunExperimentSingle(t *testing.T) {
	table, err := RunExperiment("E4", true, 1)
	if err != nil {
		t.Fatalf("%v", err)
	}
	if len(table.Rows) == 0 || !strings.Contains(table.String(), "E4") {
		t.Fatalf("experiment table empty")
	}
	if _, err := RunExperiment("E99", true, 1); err == nil {
		t.Fatalf("unknown experiment should error")
	}
}

func TestExperimentIDs(t *testing.T) {
	ids := ExperimentIDs()
	if len(ids) != 21 || ids[0] != "E1" || ids[19] != "E20" || ids[20] != "A1" {
		t.Fatalf("experiment ids wrong: %v", ids)
	}
}

func TestRunExperimentsQuickSubsetSmoke(t *testing.T) {
	// RunExperiments executes the full suite; in the unit tests we only
	// smoke-test the wiring through a single small experiment above and the
	// writer error path here.
	w := &failingWriter{}
	if err := RunExperiments(w, true, 1); err == nil {
		t.Fatalf("writer failure should surface")
	}
}

type failingWriter struct{}

func (*failingWriter) Write(p []byte) (int, error) {
	return 0, errors.New("sink closed")
}

func TestFacadeFaultedSimulation(t *testing.T) {
	// The fault seam through the public API: a faulted election runs through
	// SimulationOptions.Fault, an all-zero plan reproduces the clean outcome,
	// and the plan is deterministic across runs.
	_, d, err := Elect(StaggeredClique(8))
	if err != nil {
		t.Fatalf("%v", err)
	}
	clean, err := d.Elect(nil, SimulationOptions{})
	if err != nil {
		t.Fatalf("%v", err)
	}
	leader, rounds := clean.Leader(), clean.Rounds
	zero, err := d.Elect(nil, SimulationOptions{Fault: &FaultPlan{Seed: 3}})
	if err != nil {
		t.Fatalf("%v", err)
	}
	if zero.Leader() != leader || zero.Rounds != rounds {
		t.Fatalf("all-zero fault plan diverged: %d/%d vs %d/%d", zero.Leader(), zero.Rounds, leader, rounds)
	}
	plan := &FaultPlan{Seed: 3, Drop: 0.4, Noise: 0.1, Outages: []FaultOutage{{Node: 0, From: 0, To: 2}}}
	a, err := d.Elect(nil, SimulationOptions{Fault: plan})
	if err != nil {
		t.Fatalf("%v", err)
	}
	aLeaders := append([]int(nil), a.Leaders...)
	b, err := d.Elect(nil, SimulationOptions{Fault: plan})
	if err != nil {
		t.Fatalf("%v", err)
	}
	if len(b.Leaders) != len(aLeaders) || b.Rounds != a.Rounds {
		t.Fatalf("faulted election not deterministic: %v/%d vs %v/%d", b.Leaders, b.Rounds, aLeaders, a.Rounds)
	}
}

func TestFacadeServiceChurn(t *testing.T) {
	svc := NewService(ServiceOptions{Shards: 2})
	defer svc.Close()
	if err := svc.Register("stable", StaggeredClique(6)); err != nil {
		t.Fatalf("%v", err)
	}
	if err := svc.Register("churned", StaggeredPath(5, 1)); err != nil {
		t.Fatalf("%v", err)
	}
	soak, err := StartServiceChurn(svc, []ServiceChurnEntry{{Key: "churned", Cfg: StaggeredPath(5, 1)}}, ServiceChurnOptions{})
	if err != nil {
		t.Fatalf("%v", err)
	}
	for soak.Stats().Cycles < 3 {
		if out, err := svc.Elect("stable"); err != nil || !out.Elected() {
			t.Fatalf("elect during churn: %+v, %v", out, err)
		}
	}
	soak.Stop()
	st := soak.Stats()
	if st.Running || st.Failures != 0 || st.Readmissions == 0 {
		t.Fatalf("churn stats wrong: %+v", st)
	}
	if out, err := svc.Elect("churned"); err != nil || !out.Elected() {
		t.Fatalf("post-churn elect: %+v, %v", out, err)
	}
}
