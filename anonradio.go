// Package anonradio is the public API of the reproduction of
// "Deterministic Leader Election in Anonymous Radio Networks"
// (Miller, Pelc, Yadav; SPAA 2020).
//
// The package lets users build configurations (anonymous radio networks with
// wake-up tags), decide their feasibility with the paper's Classifier
// algorithm, derive the dedicated canonical leader-election protocol for
// feasible configurations, execute it on a faithful simulator of the radio
// model (one zero-alloc simulation core behind sequential and worker-pool
// parallel engines), and regenerate the repository's experiment tables.
//
// A minimal end-to-end use:
//
//	cfg, err := anonradio.NewConfig(4, [][2]int{{0, 1}, {1, 2}, {2, 3}}, []int{2, 0, 0, 3}, "demo")
//	report, err := anonradio.Classify(cfg)
//	if report.Feasible() {
//	    outcome, dedicated, err := anonradio.Elect(cfg)
//	    fmt.Println("leader:", outcome.Leader(), "rounds:", outcome.Rounds)
//	    _ = dedicated
//	}
//
// The heavy lifting lives in the internal packages; this package re-exports
// the user-facing pieces and provides convenience constructors so that
// applications (and the examples/ directory) only ever import anonradio.
package anonradio

import (
	"fmt"
	"io"
	"math/rand"
	"strings"

	"anonradio/internal/baseline"
	"anonradio/internal/config"
	"anonradio/internal/core"
	"anonradio/internal/election"
	"anonradio/internal/fleet"
	"anonradio/internal/graph"
	"anonradio/internal/harness"
	"anonradio/internal/history"
	"anonradio/internal/radio"
	"anonradio/internal/server"
	"anonradio/internal/service"
	"anonradio/internal/wal"
	"anonradio/internal/wire"
)

// Config is a configuration: a connected undirected graph whose nodes carry
// non-negative wake-up tags. See internal/config for the full method set
// (Span, MaxDegree, Describe, Marshal, ...).
type Config = config.Config

// Report is the result of running the Classifier on a configuration. See
// internal/core for the full method set (Feasible, Iterations, Summary, ...).
type Report = core.Report

// Dedicated is a dedicated leader election algorithm for one feasible
// configuration: the canonical DRIP plus its decision function.
//
// A Dedicated owns a pooled reusable simulator: sequential elections reuse
// its buffers, so a Dedicated is not safe for concurrent Elect calls (give
// each goroutine its own), and an election outcome's Result aliases the
// pool — it is valid until the next election on the same Dedicated. Callers
// that retain histories across elections must Clone them.
type Dedicated = election.Dedicated

// ElectionOutcome is the result of executing a leader election algorithm.
type ElectionOutcome = radio.ElectionOutcome

// SimulationResult is the raw outcome of executing a protocol on a
// configuration: per-node histories, wake-up rounds and termination rounds.
type SimulationResult = radio.Result

// ExperimentTable is a rendered experiment result.
type ExperimentTable = harness.Table

// History is a node's history vector: one entry per local round, each either
// silence, a received message, or noise (a detected collision).
type History = history.Vector

// HistoryEntry is a single history entry.
type HistoryEntry = history.Entry

// HistoryKind discriminates the three possible history entries.
type HistoryKind = history.Kind

// The three possible history entry kinds.
const (
	HistorySilence = history.Silence
	HistoryMessage = history.Message
	HistoryNoise   = history.Noise
)

// EngineKind selects a simulation engine. All engines produce bit-identical
// histories (the property suite enforces it); they differ only in how the
// per-round protocol computations are scheduled.
type EngineKind string

const (
	// SequentialEngine is the deterministic single-threaded reference
	// engine.
	SequentialEngine EngineKind = "sequential"
	// ParallelEngine shards the per-round protocol computations across a
	// persistent worker pool on the zero-alloc simulator core.
	ParallelEngine EngineKind = "parallel"
	// ConcurrentEngine is the historical name of the concurrent execution
	// path; it now selects the same worker-pool engine as ParallelEngine.
	ConcurrentEngine EngineKind = "concurrent"
	// GoroutinePerNodeEngine is the original coordinator that dedicates one
	// goroutine to every node; it is kept as an independent semantic
	// reference and is considerably slower than the worker-pool engine.
	GoroutinePerNodeEngine EngineKind = "goroutine-per-node"
)

// EngineKinds lists every valid engine kind, in the order user-facing tools
// present them.
func EngineKinds() []EngineKind {
	return []EngineKind{SequentialEngine, ParallelEngine, ConcurrentEngine, GoroutinePerNodeEngine}
}

// EngineList renders the valid engine kinds as a comma-separated string for
// flag help and error messages.
func EngineList() string {
	kinds := EngineKinds()
	parts := make([]string, len(kinds))
	for i, k := range kinds {
		parts[i] = string(k)
	}
	return strings.Join(parts, ", ")
}

// ValidateEngine checks that kind names a known engine ("" selects the
// sequential default) and, if not, returns an error listing the valid kinds.
func ValidateEngine(kind EngineKind) error {
	_, err := engineFor(kind)
	return err
}

func engineFor(kind EngineKind) (radio.Engine, error) {
	switch kind {
	case SequentialEngine, "":
		return radio.Sequential{}, nil
	case ParallelEngine:
		return radio.Parallel{}, nil
	case ConcurrentEngine:
		return radio.Concurrent{}, nil
	case GoroutinePerNodeEngine:
		return radio.GoroutinePerNode{}, nil
	default:
		return nil, fmt.Errorf("anonradio: unknown engine %q (valid engines: %s)", kind, EngineList())
	}
}

// NewConfig builds a configuration with n nodes (numbered 0..n-1), the given
// undirected edges, and the given wake-up tags (one per node, non-negative).
// The graph must be connected.
func NewConfig(n int, edges [][2]int, tags []int, name string) (*Config, error) {
	g := graph.New(n)
	for _, e := range edges {
		if e[0] < 0 || e[0] >= n || e[1] < 0 || e[1] >= n || e[0] == e[1] {
			return nil, fmt.Errorf("anonradio: invalid edge %v", e)
		}
		g.AddEdge(e[0], e[1])
	}
	cfg, err := config.New(g, tags)
	if err != nil {
		return nil, err
	}
	cfg.Name = name
	return cfg, nil
}

// ParseConfig reads a configuration in the text format produced by
// (*Config).Marshal (see internal/config for the grammar).
func ParseConfig(r io.Reader) (*Config, error) { return config.Read(r) }

// RandomConfig generates a random connected configuration with n nodes, edge
// density p on top of a random spanning tree, and independent uniform
// wake-up tags in [0, span]. The same seed always yields the same
// configuration.
func RandomConfig(n int, p float64, span int, seed int64) *Config {
	rng := rand.New(rand.NewSource(seed))
	return config.Random(n, p, config.UniformRandomTags{Span: span}, rng)
}

// The deterministic configuration families used throughout the paper and the
// experiments.
var (
	// LineFamilyG builds G_m of Proposition 4.1 (span 1, n = 4m+1, Ω(n)
	// election time).
	LineFamilyG = config.LineFamilyG
	// SpanFamilyH builds H_m of Lemma 4.2 (4 nodes, feasible, needs >= m
	// rounds).
	SpanFamilyH = config.SpanFamilyH
	// SymmetricFamilyS builds S_m of Proposition 4.5 (4 nodes, infeasible).
	SymmetricFamilyS = config.SymmetricFamilyS
	// StaggeredPath builds a path whose node i has tag i*step.
	StaggeredPath = config.StaggeredPath
	// StaggeredClique builds a complete graph whose node i has tag i.
	StaggeredClique = config.StaggeredClique
	// EarlyCenterStar builds a star whose centre wakes first.
	EarlyCenterStar = config.EarlyCenterStar
	// SingleNode builds the trivial feasible one-node configuration.
	SingleNode = config.SingleNode
	// SymmetricPair builds the smallest infeasible configuration.
	SymmetricPair = config.SymmetricPair
	// AsymmetricPair builds the two-node configuration with staggered tags.
	AsymmetricPair = config.AsymmetricPair
)

// Classify runs the paper's Classifier algorithm (Theorem 3.17) on cfg and
// returns the full report: verdict, partition evolution, representative
// lists and designated leader.
func Classify(cfg *Config) (*Report, error) { return core.Classify(cfg) }

// IsFeasible reports whether a dedicated deterministic leader election
// algorithm exists for cfg.
func IsFeasible(cfg *Config) (bool, error) { return core.IsFeasible(cfg) }

// BuildElection constructs the dedicated leader election algorithm (the
// canonical DRIP and its decision function, Theorem 3.15) for a feasible
// configuration. It returns election.ErrInfeasible (wrapped) when cfg is not
// feasible.
func BuildElection(cfg *Config) (*Dedicated, error) { return election.BuildDedicated(cfg) }

// ErrInfeasible is returned (wrapped) by BuildElection and Elect when the
// configuration admits no leader election algorithm.
var ErrInfeasible = election.ErrInfeasible

// Elect classifies cfg, builds its dedicated algorithm, executes it on the
// sequential engine and verifies the outcome (exactly one leader, the
// designated node, within the round bound). The outcome's Result aliases
// the returned Dedicated's pooled simulator; see Dedicated for the lifetime
// and concurrency contract.
func Elect(cfg *Config) (*ElectionOutcome, *Dedicated, error) {
	return ElectWith(cfg, SequentialEngine)
}

// ElectWith is Elect with an explicit choice of simulation engine.
func ElectWith(cfg *Config, kind EngineKind) (*ElectionOutcome, *Dedicated, error) {
	if _, err := engineFor(kind); err != nil {
		return nil, nil, err // fail on a bad engine before paying for the build
	}
	d, err := election.BuildDedicated(cfg)
	if err != nil {
		return nil, nil, err
	}
	out, err := ElectDedicated(d, kind)
	if err != nil {
		return nil, nil, err
	}
	return out, d, nil
}

// ElectDedicated executes an already-built (or loaded) dedicated algorithm
// on the chosen engine and verifies the outcome; it is the serving half of
// ElectWith/ElectCompiled for callers that manage algorithm lifetimes
// themselves.
func ElectDedicated(d *Dedicated, kind EngineKind) (*ElectionOutcome, error) {
	eng, err := engineFor(kind)
	if err != nil {
		return nil, err
	}
	out, err := d.Elect(eng, radio.Options{})
	if err != nil {
		return nil, err
	}
	if err := d.Verify(out); err != nil {
		return nil, err
	}
	return out, nil
}

// Simulate executes the dedicated algorithm's protocol on its configuration
// with the chosen engine and returns the raw per-node histories; it is the
// entry point for users who want to inspect executions rather than just the
// elected leader.
func Simulate(d *Dedicated, kind EngineKind, recordTrace bool) (*SimulationResult, error) {
	eng, err := engineFor(kind)
	if err != nil {
		return nil, err
	}
	return eng.Run(d.Config, d.DRIP, radio.Options{RecordTrace: recordTrace})
}

// CrossCheckFeasibility classifies cfg with both the Classifier and the
// independent naive oracle and reports whether they agree (they always
// should; the function exists for users who want the redundancy).
func CrossCheckFeasibility(cfg *Config) (feasible bool, agree bool, err error) {
	rep, err := core.Classify(cfg)
	if err != nil {
		return false, false, err
	}
	naive, err := baseline.NaiveClassify(cfg)
	if err != nil {
		return false, false, err
	}
	return rep.Feasible(), rep.Feasible() == naive.Feasible, nil
}

// CompiledElection is the serializable (JSON) form of a dedicated algorithm:
// the canonical protocol blueprint plus the decision-function data. It is
// what cmd/compile writes to disk.
type CompiledElection = election.Compiled

// ExecutionMetrics summarizes a traced execution (transmissions, collisions,
// forced wake-ups, busy rounds).
type ExecutionMetrics = radio.Metrics

// CompileElection returns the serializable form of a dedicated algorithm;
// marshal it with encoding/json to persist it.
func CompileElection(d *Dedicated) *CompiledElection { return d.Compile() }

// LoadElection rebuilds an executable dedicated algorithm from its compiled
// form and the configuration it is meant to run on, fully validating any
// embedded phase table against a recompilation from the blueprint.
func LoadElection(c *CompiledElection, cfg *Config) (*Dedicated, error) {
	return election.Load(c, cfg)
}

// LoadElectionTrusted is LoadElection with the digest fast path: an
// artifact whose phase-table digest verifies skips the recompile-and-
// compare validation. The digest is a plain content hash, so only use this
// for artifacts from a source the deployment already trusts; see
// election.LoadTrusted.
func LoadElectionTrusted(c *CompiledElection, cfg *Config) (*Dedicated, error) {
	return election.LoadTrusted(c, cfg)
}

// ParseCompiledElection decodes a compiled algorithm from JSON.
func ParseCompiledElection(data []byte) (*CompiledElection, error) {
	return election.UnmarshalCompiled(data)
}

// ElectCompiled executes a pre-compiled dedicated algorithm on cfg with the
// chosen engine and verifies the outcome (full artifact validation; load
// with LoadElectionTrusted and ElectDedicated to opt into the digest fast
// path).
func ElectCompiled(c *CompiledElection, cfg *Config, kind EngineKind) (*ElectionOutcome, *Dedicated, error) {
	if _, err := engineFor(kind); err != nil {
		return nil, nil, err // fail on a bad engine before paying for the load
	}
	d, err := election.Load(c, cfg)
	if err != nil {
		return nil, nil, err
	}
	out, err := ElectDedicated(d, kind)
	if err != nil {
		return nil, nil, err
	}
	return out, d, nil
}

// Service is the sharded election service: a long-lived registry of
// dedicated algorithms served from worker-owned shards. Keys hash onto
// shards; each shard's worker owns its configurations, simulators and
// outcome buffers, so concurrent Register/Elect/Evict calls are safe and
// the steady-state Elect path performs zero heap allocations. Admissions
// (Register, RegisterCompiled, and their Async variants) build on a
// bounded builder pool off the serve path, so elections never wait behind
// a build; a full admission queue returns ErrServiceAdmissionBusy. See
// internal/service for the ownership model. Release a Service with Close.
type Service = service.Registry

// ServiceOptions configure a Service (shard count, per-shard queue depth,
// builder pool size, admission queue bound).
type ServiceOptions = service.Options

// ServiceOutcome is the value-typed result of one served election: key,
// elected leader, rounds, per-key error. It aliases no service-owned memory.
type ServiceOutcome = service.Outcome

// ServiceShardStats is a snapshot of one shard's counters.
type ServiceShardStats = service.ShardStats

// ErrServiceClosed is returned by operations on a closed Service.
var ErrServiceClosed = service.ErrClosed

// ErrServiceUnknownKey is returned (wrapped) by served elections on a key
// with no registered configuration.
var ErrServiceUnknownKey = service.ErrUnknownKey

// ErrServiceAdmissionBusy is returned (wrapped) by Service registrations
// when the bounded admission queue is full — the backpressure signal; retry
// after a short delay. The HTTP server maps it to 429 with a Retry-After
// header.
var ErrServiceAdmissionBusy = service.ErrAdmissionBusy

// ServiceAdmissionState is the lifecycle of one Service admission: unknown,
// queued, building, done or failed.
type ServiceAdmissionState = service.AdmissionState

// The admission lifecycle states, as reported by
// (*Service).AdmissionStatus.
const (
	ServiceAdmissionUnknown  = service.AdmissionUnknown
	ServiceAdmissionQueued   = service.AdmissionQueued
	ServiceAdmissionBuilding = service.AdmissionBuilding
	ServiceAdmissionDone     = service.AdmissionDone
	ServiceAdmissionFailed   = service.AdmissionFailed
)

// ServiceAdmissionStatus is the pollable progress of the most recent
// admission submitted for a key (see (*Service).RegisterAsync and
// (*Service).AdmissionStatus).
type ServiceAdmissionStatus = service.AdmissionStatus

// ServiceAdmissionStats is a snapshot of the Service admission pipeline's
// counters (builders, queue bound, pending/submitted/completed/failed/
// rejected admissions).
type ServiceAdmissionStats = service.AdmissionStats

// NewService starts a sharded election service. Admit configurations with
// Register (build on the shard) or RegisterCompiled (load an artifact, with
// the digest fast path), then serve steady-state elections with Elect /
// ElectBatch and observe the per-shard counters with Stats.
func NewService(opts ServiceOptions) *Service { return service.New(opts) }

// ServiceTotals folds per-shard snapshots into one aggregate.
func ServiceTotals(stats []ServiceShardStats) ServiceShardStats { return service.Totals(stats) }

// ServiceSnapshotManifest describes an on-disk registry snapshot: the
// format version and one entry (key, artifact file, configuration file,
// artifact digest) per persisted configuration.
type ServiceSnapshotManifest = service.Manifest

// ServiceRestoreReport summarizes a snapshot restore: entries re-admitted,
// and how many went through the digest-trusted fast path versus the full
// recompile-and-compare revalidation.
type ServiceRestoreReport = service.RestoreReport

// SnapshotService persists every configuration admitted in the service into
// dir: one compiled artifact (the JSON of cmd/compile) and one
// configuration file per key, plus a manifest of keys and artifact digests,
// written last. See docs/SERVER.md for the on-disk format.
func SnapshotService(s *Service, dir string) (*ServiceSnapshotManifest, error) {
	return s.Snapshot(dir)
}

// RestoreService re-admits a snapshot directory into the service. Entries
// whose artifact digest matches the manifest load through the
// digest-trusted fast path (skipping recompilation — the cheap cold-start
// path); mismatches fall back to the fully validated load. Damaged entries
// are skipped and reported (ServiceRestoreReport.Skipped), never fatal;
// only a manifest-level failure errors.
func RestoreService(s *Service, dir string) (*ServiceRestoreReport, error) {
	return s.Restore(dir)
}

// ServiceRestoreSkip is one snapshot entry a restore could not re-admit
// (key + reason); the undamaged entries still boot.
type ServiceRestoreSkip = service.RestoreSkip

// ServiceWALOptions configure the durable registry's admission journal:
// directory, fsync policy, and checkpoint triggers. See OpenService.
type ServiceWALOptions = service.WALOptions

// ServiceRecoveryReport summarizes what OpenService brought back: the
// checkpoint restore, the journal replay (admits, evicts, per-record
// faults), and every piece of damage tolerated along the way. Clean()
// reports a loss-free boot.
type ServiceRecoveryReport = service.RecoveryReport

// ServiceWALStats is an atomics-only snapshot of the journal's counters
// (appends, sync lag, segment count, checkpoints), as returned by
// (*Service).WALStats and served under GET /v1/stats.
type ServiceWALStats = service.WALStats

// WALSyncPolicy selects when journal appends reach stable storage:
// WALSyncAlways (fsync before the append returns), WALSyncBatch
// (write-through per record, background fsync timer — survives kill -9,
// not power loss), WALSyncOff (in-process buffer).
type WALSyncPolicy = wal.SyncPolicy

// The journal fsync policies.
const (
	WALSyncAlways = wal.SyncAlways
	WALSyncBatch  = wal.SyncBatch
	WALSyncOff    = wal.SyncOff
)

// ParseWALSyncPolicy parses "always", "batch" or "off".
func ParseWALSyncPolicy(s string) (WALSyncPolicy, error) { return wal.ParseSyncPolicy(s) }

// OpenService starts a durable election service: every acknowledged
// admission and eviction is journaled to a write-ahead log in
// opts.WAL.Dir before the call returns (per the fsync policy), a
// background checkpoint snapshots the registry and truncates the journal,
// and this call replays checkpoint + journal back into a serving registry
// — tolerating torn or corrupt records with a per-record report instead
// of refusing to boot. The election serve path is untouched: steady-state
// Elect stays zero-alloc with the journal enabled.
func OpenService(opts ServiceOptions) (*Service, *ServiceRecoveryReport, error) {
	return service.Open(opts)
}

// CheckpointService snapshots the durable service into its checkpoint
// directory and truncates the journal (rotate → snapshot → delete frozen
// segments; crash-safe in every window). The background checkpointer does
// this on a timer; call it explicitly before planned maintenance.
func CheckpointService(s *Service) error { return s.Checkpoint() }

// Server is the HTTP/JSON front-end over a Service: register, elect, batch
// elect, evict, stats and health endpoints with per-endpoint counters and
// graceful shutdown. cmd/anonradiod is the deployable daemon around it; see
// internal/server and docs/SERVER.md for the API.
type Server = server.Server

// ServerOptions configure a Server (body size cap, batch size cap, header
// read timeout); the zero value is ready to use.
type ServerOptions = server.Options

// NewServer builds an HTTP server over svc. The service must outlive the
// server; stop the server with Shutdown (the service's Close stays the
// caller's job, typically after a final SnapshotService).
func NewServer(svc *Service, opts ServerOptions) *Server { return server.New(svc, opts) }

// ServerRegisterResponse is the answer to a registration (key, source —
// "built", "trusted", "validated" or "artifact" — and admission status).
type ServerRegisterResponse = server.RegisterResponse

// ServerOutcome is one served election in its HTTP form.
type ServerOutcome = server.Outcome

// ServerBatchResponse is the answer to a batch election: one outcome per
// submitted key, in submission order, plus a failure count.
type ServerBatchResponse = server.BatchResponse

// ServerStatsResponse is the body of GET /v1/stats: shard counters,
// admission pipeline counters, WAL counters, per-key fault counters (under
// a fault plan) and per-endpoint request/latency rows.
type ServerStatsResponse = server.StatsResponse

// ServerAdmissionStatus is the body of GET /v1/register/status/{key} for a
// polled asynchronous admission.
type ServerAdmissionStatus = server.AdmissionStatusResponse

// ServerHealthResponse is the body of GET /healthz.
type ServerHealthResponse = server.HealthResponse

// FleetRing is a rendezvous-hash placement over a set of node names: every
// key is owned by exactly one node, the mapping is a pure function of the
// membership (no state to gossip or persist), and adding or removing one
// node moves only the keys that node gains or loses — never a reshuffle of
// everyone else's placement.
type FleetRing = fleet.Ring

// NewFleetRing builds a placement ring over the given node names.
func NewFleetRing(nodes ...string) *FleetRing { return fleet.NewRing(nodes...) }

// FleetClient talks to one anonradiod over HTTP: register (sync, async,
// with artifact), elect, batch elect, evict, stats, health, and the
// artifact-shipping endpoints, in JSON or the binary wire encoding, with
// the server's status codes mapped back onto the sentinel errors (so
// errors.Is(err, ErrUnknownKey) works across the network). It is the one
// client implementation shared by the router daemon, the examples and the
// CI smokes.
type FleetClient = fleet.Client

// FleetClientOptions configure a FleetClient (encoding, HTTP transport,
// retry-on-busy policy); the zero value is ready to use.
type FleetClientOptions = fleet.ClientOptions

// NewFleetClient builds a client for the node at base ("http://host:port").
func NewFleetClient(base string, opts FleetClientOptions) *FleetClient {
	return fleet.NewClient(base, opts)
}

// Fleet routes registry operations across a ring of anonradiod nodes:
// registrations and elections go to each key's owning node, batch
// elections are split per owner and reassembled in submission order, and
// membership changes migrate keys by shipping their compiled artifacts
// through the digest-trusted fast path — no recompilation on the receiving
// node. cmd/anonradio-router is the deployable front door around it.
type Fleet = fleet.Fleet

// NewFleet builds a fleet over the node base URLs.
func NewFleet(nodes []string, opts FleetClientOptions) (*Fleet, error) {
	return fleet.New(nodes, opts)
}

// FleetRouter is the fleet's HTTP front door: the same /v1/* surface a
// single node serves, routed per key, plus per-node health probing that
// drops dead nodes from the ring and re-registers their keys from the
// configuration cache onto the survivors.
type FleetRouter = fleet.Router

// FleetRouterOptions configure a FleetRouter (probe cadence and loss
// threshold, batch and body caps); the zero value is ready to use.
type FleetRouterOptions = fleet.RouterOptions

// NewFleetRouter builds the front door over f; call Start to begin health
// probing and Stop to halt it.
func NewFleetRouter(f *Fleet, opts FleetRouterOptions) *FleetRouter {
	return fleet.NewRouter(f, opts)
}

// BuildArena is a reusable scratch arena for building dedicated algorithms:
// repeated builds reuse the classifier scratch and the canonical-run
// simulator, keeping only the allocations genuinely retained by each built
// algorithm. A BuildArena is not safe for concurrent use.
type BuildArena = election.BuildArena

// NewBuildArena returns an empty build arena.
func NewBuildArena() *BuildArena { return election.NewBuildArena() }

// BuildElectionInto is BuildElection with an explicit reusable build arena
// (nil behaves like BuildElection).
func BuildElectionInto(a *BuildArena, cfg *Config) (*Dedicated, error) {
	return election.BuildDedicatedInto(a, cfg)
}

// ComputeMetrics derives execution metrics from a traced simulation result
// (one produced with recordTrace=true).
func ComputeMetrics(res *SimulationResult) (*ExecutionMetrics, error) {
	return radio.ComputeMetrics(res)
}

// ExecutionTimeline is a per-node, per-round character grid of a traced
// execution (who slept, transmitted, heard a message or noise, terminated).
type ExecutionTimeline = radio.Timeline

// BuildTimeline renders a traced simulation result as a per-node timeline
// grid.
func BuildTimeline(res *SimulationResult) (*ExecutionTimeline, error) {
	return radio.BuildTimeline(res)
}

// ClassifyFast is a drop-in replacement for Classify that uses hash-based
// partition refinement instead of the paper's representative scan; it
// produces an identical report. The A1 ablation experiment and the
// BenchmarkAblationRefine* benchmarks compare the two implementations.
func ClassifyFast(cfg *Config) (*Report, error) { return core.ClassifyFast(cfg) }

// ClassifyOptions control how much of a Classifier run the report
// materializes; the zero value is the lean mode used by batch surveys (only
// the final partition is kept), while RecordSnapshots true reproduces the
// full per-iteration history of Classify.
type ClassifyOptions = core.ClassifyOptions

// ClassifyTurbo is the throughput-engineered classifier: flat packed label
// arenas, integer-hashed refinement and reusable scratch state. With
// ClassifyOptions{RecordSnapshots: true} its report carries the same
// verdict, leader, iteration count, partition sequence and lists as
// Classify's (a property test enforces this; only the Stats operation
// counters are implementation-specific); the lean zero value skips the
// per-iteration snapshot clones for callers that only need the verdict,
// leader and lists.
func ClassifyTurbo(cfg *Config, opts ClassifyOptions) (*Report, error) {
	return core.ClassifyTurbo(cfg, opts)
}

// BatchResult is the outcome of classifying one configuration of a batch.
type BatchResult = core.BatchResult

// ClassifyBatch classifies many configurations in parallel on a worker pool
// (workers < 1 selects GOMAXPROCS); each worker reuses one turbo scratch
// arena. Results are indexed like the input and failures are reported per
// configuration.
func ClassifyBatch(cfgs []*Config, opts ClassifyOptions, workers int) []BatchResult {
	return core.ClassifyBatch(cfgs, opts, workers)
}

// FeasibilitySurvey aggregates the verdicts of a parallel feasibility
// survey.
type FeasibilitySurvey = core.Survey

// SurveyParallel classifies count configurations produced by gen (gen(i)
// builds configuration i inside the worker pool, so it must be safe for
// concurrent calls with distinct arguments) and aggregates the verdicts.
// Deterministic generators make the survey reproducible regardless of
// worker count.
func SurveyParallel(count, workers int, gen func(i int) *Config) (*FeasibilitySurvey, error) {
	return core.SurveyParallel(count, workers, gen)
}

// SimulationOptions control a simulation run (round limit, tracing, worker
// bound for the concurrent engine).
type SimulationOptions = radio.Options

// Simulator is a reusable simulation engine bound to one configuration:
// buffers (including the returned Result) are reused across runs, making
// repeated simulations allocation-free in steady state. The Result of a Run
// is valid until the next Run on the same Simulator. Its per-round protocol
// step runs on a pluggable executor (inline, or a worker pool); all
// executors produce bit-identical results.
type Simulator = radio.Simulator

// NewSimulator builds a reusable single-threaded engine for cfg.
func NewSimulator(cfg *Config) (*Simulator, error) { return radio.NewSimulator(cfg) }

// NewParallelSimulator builds a reusable engine for cfg whose per-round
// protocol computations are sharded across `workers` pool goroutines
// (workers <= 0 selects GOMAXPROCS). Call Close when done to stop the pool.
func NewParallelSimulator(cfg *Config, workers int) (*Simulator, error) {
	return radio.NewParallelSimulator(cfg, workers)
}

// FaultPlan is a seeded description of a misbehaving radio medium: a
// per-link per-round message-drop probability, a per-node per-round
// spurious-collision (noise) probability, and per-node outage windows.
// Set it on SimulationOptions.Fault (or ServiceOptions.Fault for a served
// registry) to run elections over a lossy medium. Every fault decision is
// a pure function of (Seed, round, node), so the same plan reproduces the
// same faulted execution on every engine and every run; a nil or all-zero
// plan leaves the medium untouched, bit-identically. See internal/radio's
// fault seam and experiment E18.
type FaultPlan = radio.FaultPlan

// FaultOutage is one per-node radio outage window [From, To) in global
// rounds: the node neither delivers nor receives while down, though its
// tag-driven spontaneous wake-up still fires (the tag is a clock, not a
// radio event).
type FaultOutage = radio.Outage

// ServiceChurnSoak is a long-running dynamic-churn driver over a Service:
// it cycles a fixed set of keys evict → re-admit (through the
// rebuild-in-place admission pipeline) while elections keep serving, and
// guarantees no lost admissions — every eviction is repaired before the
// soak ends, admission backpressure is retried, and only a closed registry
// stops it early. The HTTP server exposes it under /v1/soak; experiment
// E19 and the CI churn-soak smoke are the worked examples.
type ServiceChurnSoak = service.ChurnSoak

// ServiceChurnEntry is one churned key: the registry key plus the
// configuration re-admitted after each eviction.
type ServiceChurnEntry = service.ChurnEntry

// ServiceChurnOptions configure a churn soak (pause between cycles; zero
// churns as fast as the admission pipeline allows).
type ServiceChurnOptions = service.ChurnOptions

// ServiceChurnStats is a snapshot of a soak's counters: completed cycles,
// evictions, re-admissions, backpressure retries and terminal failures.
type ServiceChurnStats = service.ChurnStats

// StartServiceChurn starts a churn soak over s. Stop it with
// (*ServiceChurnSoak).Stop, which waits for an in-flight eviction to be
// repaired before returning.
func StartServiceChurn(s *Service, entries []ServiceChurnEntry, opts ServiceChurnOptions) (*ServiceChurnSoak, error) {
	return service.StartChurn(s, entries, opts)
}

// RunExperiments regenerates every experiment table (E1-E19, A1) and writes
// them to w. With quick=true a reduced parameter sweep is used. The election
// experiments run on the sequential engine; use RunExperimentsOn to choose.
func RunExperiments(w io.Writer, quick bool, seed int64) error {
	return RunExperimentsOn(w, quick, seed, SequentialEngine)
}

// RunExperimentsOn is RunExperiments with an explicit simulation engine for
// the election experiments (E2-E4, E9, E12). Tables are engine-independent;
// only the wall-clock timings change.
func RunExperimentsOn(w io.Writer, quick bool, seed int64, kind EngineKind) error {
	eng, err := engineFor(kind)
	if err != nil {
		return err
	}
	return harness.RunAll(harness.Options{Quick: quick, Seed: seed, Engine: eng}, w)
}

// RunExperiment runs a single experiment by ID ("E1".."E19", "A1") and returns its
// table.
func RunExperiment(id string, quick bool, seed int64) (*ExperimentTable, error) {
	return RunExperimentOn(id, quick, seed, SequentialEngine)
}

// RunExperimentOn is RunExperiment with an explicit simulation engine.
func RunExperimentOn(id string, quick bool, seed int64, kind EngineKind) (*ExperimentTable, error) {
	eng, err := engineFor(kind)
	if err != nil {
		return nil, err
	}
	exp, ok := harness.Lookup(id)
	if !ok {
		return nil, fmt.Errorf("anonradio: unknown experiment %q", id)
	}
	return exp.Run(harness.Options{Quick: quick, Seed: seed, Engine: eng})
}

// ServiceEncoding selects an on-disk encoding for what the durable service
// writes: snapshot artifacts (ServiceOptions.SnapshotEncoding) and journal
// records (ServiceWALOptions.Encoding). The binary wire encoding is the
// default; restore and replay auto-detect either encoding regardless of this
// setting, so mixed-era directories always boot.
type ServiceEncoding = service.Encoding

// The service encodings.
const (
	ServiceEncodingBinary = service.EncodingBinary
	ServiceEncodingJSON   = service.EncodingJSON
)

// ParseServiceEncoding parses "binary" or "json".
func ParseServiceEncoding(s string) (ServiceEncoding, error) { return service.ParseEncoding(s) }

// WireContentType is the Content-Type that selects the binary wire encoding
// on the HTTP server's register/elect/batch endpoints: a request carrying it
// is decoded as one length-prefixed CRC-checked frame and answered in kind,
// on the same routes as JSON. See docs/SERVER.md for the frame layout.
const WireContentType = server.ContentTypeBinary

// WireFrameType discriminates binary wire frames.
type WireFrameType = wire.FrameType

// The wire frame types a binary HTTP client exchanges.
const (
	WireFrameElectRequest     = wire.FrameElectRequest
	WireFrameOutcome          = wire.FrameOutcome
	WireFrameBatchRequest     = wire.FrameBatchRequest
	WireFrameBatchResponse    = wire.FrameBatchResponse
	WireFrameRegisterRequest  = wire.FrameRegisterRequest
	WireFrameRegisterResponse = wire.FrameRegisterResponse
	WireFrameError            = wire.FrameError
)

// The binary wire messages (each with AppendTo/DecodeFrom; see
// internal/wire): elect request, election outcome, batch request/response,
// register request/response, and the error frame body.
type (
	WireElectRequest     = wire.ElectRequest
	WireOutcome          = wire.Outcome
	WireBatchRequest     = wire.BatchRequest
	WireBatchResponse    = wire.BatchResponse
	WireRegisterRequest  = wire.RegisterRequest
	WireRegisterResponse = wire.RegisterResponse
	WireErrorMessage     = wire.ErrorMessage
)

// The frame constructors and the frame decoder of the binary wire encoding,
// re-exported for clients that speak it over HTTP (examples/http-client
// -binary is the worked example).
var (
	AppendWireElectRequestFrame    = wire.AppendElectRequestFrame
	AppendWireBatchRequestFrame    = wire.AppendBatchRequestFrame
	AppendWireRegisterRequestFrame = wire.AppendRegisterRequestFrame
	DecodeWireFrame                = wire.DecodeFrame
)

// ExperimentIDs lists the available experiment identifiers in order.
func ExperimentIDs() []string {
	var ids []string
	for _, e := range harness.All() {
		ids = append(ids, e.ID)
	}
	return ids
}
