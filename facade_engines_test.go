package anonradio

import (
	"strings"
	"testing"
)

func TestEngineKindsAndValidation(t *testing.T) {
	for _, kind := range EngineKinds() {
		if err := ValidateEngine(kind); err != nil {
			t.Fatalf("%s should be a valid engine: %v", kind, err)
		}
	}
	if err := ValidateEngine(""); err != nil {
		t.Fatalf("empty kind should select the default: %v", err)
	}
	err := ValidateEngine("warp-drive")
	if err == nil {
		t.Fatalf("unknown engine should be rejected")
	}
	for _, kind := range EngineKinds() {
		if !strings.Contains(err.Error(), string(kind)) {
			t.Fatalf("error should list %q: %v", kind, err)
		}
	}
}

func TestElectWithEveryEngineKind(t *testing.T) {
	cfg := SpanFamilyH(2)
	want, _, err := Elect(cfg)
	if err != nil {
		t.Fatalf("%v", err)
	}
	for _, kind := range EngineKinds() {
		out, d, err := ElectWith(cfg, kind)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if out.Leader() != want.Leader() || out.Rounds != want.Rounds {
			t.Fatalf("%s: leader %d rounds %d, want %d/%d", kind, out.Leader(), out.Rounds, want.Leader(), want.Rounds)
		}
		if d.ExpectedLeader != out.Leader() {
			t.Fatalf("%s: elected %d, designated %d", kind, out.Leader(), d.ExpectedLeader)
		}
	}
	if _, _, err := ElectWith(cfg, "warp-drive"); err == nil {
		t.Fatalf("unknown engine should be rejected")
	}
}

func TestParallelSimulatorFacade(t *testing.T) {
	cfg := StaggeredClique(12)
	_, d, err := Elect(cfg)
	if err != nil {
		t.Fatalf("%v", err)
	}
	seq, err := Simulate(d, SequentialEngine, false)
	if err != nil {
		t.Fatalf("%v", err)
	}
	sim, err := NewParallelSimulator(cfg, 2)
	if err != nil {
		t.Fatalf("%v", err)
	}
	defer sim.Close()
	res, err := sim.Run(d.DRIP, SimulationOptions{})
	if err != nil {
		t.Fatalf("%v", err)
	}
	if res.GlobalRounds != seq.GlobalRounds {
		t.Fatalf("parallel simulator rounds %d, sequential %d", res.GlobalRounds, seq.GlobalRounds)
	}
	for v := 0; v < cfg.N(); v++ {
		if !res.Histories[v].Equal(seq.Histories[v]) {
			t.Fatalf("node %d diverged between executors", v)
		}
	}
}

func TestRunExperimentOnEngine(t *testing.T) {
	table, err := RunExperimentOn("E4", true, 1, ParallelEngine)
	if err != nil {
		t.Fatalf("%v", err)
	}
	if len(table.Rows) == 0 {
		t.Fatalf("E4 produced no rows")
	}
	if _, err := RunExperimentOn("E4", true, 1, "warp-drive"); err == nil {
		t.Fatalf("unknown engine should be rejected")
	}
}
